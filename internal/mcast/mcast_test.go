package mcast

import (
	"net"
	"sync"
	"testing"
	"time"
)

func TestJoinSendLeave(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	rcv, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()

	g := Group{Video: 1, Channel: 2}
	if n, err := hub.Send(g, []byte("nobody")); err != nil || n != 0 {
		t.Fatalf("send to empty group: n=%d err=%v", n, err)
	}
	if err := hub.Join(g, rcv.Addr()); err != nil {
		t.Fatal(err)
	}
	if hub.Members(g) != 1 {
		t.Fatalf("members = %d", hub.Members(g))
	}
	// Double join is idempotent.
	if err := hub.Join(g, rcv.Addr()); err != nil {
		t.Fatal(err)
	}
	if hub.Members(g) != 1 {
		t.Fatalf("members after double join = %d", hub.Members(g))
	}

	msg := []byte("hello broadcast")
	if n, err := hub.Send(g, msg); err != nil || n != 1 {
		t.Fatalf("send: n=%d err=%v", n, err)
	}
	buf := make([]byte, 64)
	rcv.Conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := rcv.Conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != string(msg) {
		t.Errorf("received %q", buf[:n])
	}
	if hub.Sent() != 1 {
		t.Errorf("Sent = %d", hub.Sent())
	}

	hub.Leave(g, rcv.Addr())
	if hub.Members(g) != 0 {
		t.Errorf("members after leave = %d", hub.Members(g))
	}
	// Sends after leave reach nobody.
	if n, err := hub.Send(g, msg); err != nil || n != 0 {
		t.Errorf("send after leave: n=%d err=%v", n, err)
	}
}

func TestGroupIsolation(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ga, gb := Group{Video: 0, Channel: 1}, Group{Video: 0, Channel: 2}
	if err := hub.Join(ga, a.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := hub.Join(gb, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Send(ga, []byte("for-a")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	b.Conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, _, err := b.Conn.ReadFromUDPAddrPort(buf); err == nil {
		t.Error("receiver b got traffic for group a")
	}
	a.Conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := a.Conn.ReadFromUDPAddrPort(buf)
	if err != nil || string(buf[:n]) != "for-a" {
		t.Errorf("receiver a: %q, %v", buf[:n], err)
	}
}

func TestFanOut(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	g := Group{Video: 3, Channel: 1}
	const nRcv = 5
	var rcvs []*Receiver
	for i := 0; i < nRcv; i++ {
		r, err := NewReceiver()
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		rcvs = append(rcvs, r)
		if err := hub.Join(g, r.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := hub.Send(g, []byte("all")); err != nil || n != nRcv {
		t.Fatalf("fan out n=%d err=%v", n, err)
	}
	for i, r := range rcvs {
		buf := make([]byte, 8)
		r.Conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := r.Conn.ReadFromUDPAddrPort(buf)
		if err != nil || string(buf[:n]) != "all" {
			t.Errorf("receiver %d: %q, %v", i, buf[:n], err)
		}
	}
}

func TestClosedHub(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	g := Group{}
	if _, err := hub.Send(g, []byte("x")); err == nil {
		t.Error("send on closed hub succeeded")
	}
	if err := hub.Join(g, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}); err == nil {
		t.Error("join on closed hub succeeded")
	}
	if err := hub.Join(Group{}, nil); err == nil {
		t.Error("nil join address accepted")
	}
}

func TestGroupString(t *testing.T) {
	if got := (Group{Video: 4, Channel: 2}).String(); got != "video4/ch2" {
		t.Errorf("String = %q", got)
	}
}

// TestSendBestEffort is the regression test for the fan-out abort bug: a
// member whose write fails mid-group (here an IPv6 destination the hub's
// IPv4 socket cannot reach, joined between two healthy receivers) must not
// starve the members after it. Delivery continues, the failure is counted,
// and the aggregated error reports how many writes failed.
func TestSendBestEffort(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	g := Group{Video: 1, Channel: 1}

	first, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if err := hub.Join(g, first.Addr()); err != nil {
		t.Fatal(err)
	}
	// The poisoned member: an address family the sending socket rejects,
	// so every write to it fails deterministically.
	bad := &net.UDPAddr{IP: net.IPv6loopback, Port: 40000}
	if err := hub.Join(g, bad); err != nil {
		t.Fatal(err)
	}
	last, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer last.Close()
	if err := hub.Join(g, last.Addr()); err != nil {
		t.Fatal(err)
	}

	n, err := hub.Send(g, []byte("best effort"))
	if n != 2 {
		t.Errorf("delivered to %d members, want 2 (the healthy ones)", n)
	}
	if err == nil {
		t.Error("a failing member produced no aggregated error")
	}
	for i, r := range []*Receiver{first, last} {
		buf := make([]byte, 32)
		r.Conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		rn, _, err := r.Conn.ReadFromUDPAddrPort(buf)
		if err != nil || string(buf[:rn]) != "best effort" {
			t.Errorf("healthy receiver %d starved: %q, %v", i, buf[:rn], err)
		}
	}
	if hub.SendFailures() != 1 {
		t.Errorf("SendFailures = %d, want 1", hub.SendFailures())
	}
	if hub.Sent() != 2 {
		t.Errorf("Sent = %d, want 2", hub.Sent())
	}

	// A member that closed its socket mid-group is simply unreachable UDP:
	// the datagram vanishes without an error and everyone else is served.
	first.Close()
	n, _ = hub.Send(g, []byte("after close"))
	if n == 0 {
		t.Error("whole group starved after one receiver closed")
	}
	buf := make([]byte, 32)
	last.Conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	rn, _, err := last.Conn.ReadFromUDPAddrPort(buf)
	if err != nil || string(buf[:rn]) != "after close" {
		t.Errorf("surviving receiver starved after peer close: %q, %v", buf[:rn], err)
	}
}

// TestEvictDeadMember: a member that fails EvictAfterFailures consecutive
// sends is removed from its group, so later broadcasts stop paying a doomed
// syscall for it, while healthy members keep receiving throughout.
func TestEvictDeadMember(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	g := Group{Video: 1, Channel: 1}
	healthy, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if err := hub.Join(g, healthy.Addr()); err != nil {
		t.Fatal(err)
	}
	// Persistently dead member: an address family the hub's IPv4 socket
	// rejects, so every write fails deterministically.
	dead := &net.UDPAddr{IP: net.IPv6loopback, Port: 40001}
	if err := hub.Join(g, dead); err != nil {
		t.Fatal(err)
	}
	if hub.Members(g) != 2 {
		t.Fatalf("members = %d, want 2", hub.Members(g))
	}

	frame := []byte("evict me")
	for i := 0; i < EvictAfterFailures; i++ {
		if hub.Members(g) != 2 {
			t.Fatalf("member evicted after only %d failures", i)
		}
		n, err := hub.Send(g, frame)
		if n != 1 {
			t.Fatalf("send %d delivered to %d members, want 1", i, n)
		}
		if err == nil {
			t.Fatalf("send %d: dead member produced no error", i)
		}
	}
	if hub.Members(g) != 1 {
		t.Fatalf("members after %d failures = %d, want 1 (dead member evicted)",
			EvictAfterFailures, hub.Members(g))
	}
	if hub.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", hub.Evictions())
	}
	// Post-eviction sends are clean: no failures, healthy member served.
	failedBefore := hub.SendFailures()
	if n, err := hub.Send(g, frame); err != nil || n != 1 {
		t.Errorf("post-eviction send: n=%d err=%v", n, err)
	}
	if hub.SendFailures() != failedBefore {
		t.Error("evicted member still charged a send failure")
	}
	buf := make([]byte, 32)
	healthy.Conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < EvictAfterFailures+1; i++ {
		if _, _, err := healthy.Conn.ReadFromUDPAddrPort(buf); err != nil {
			t.Fatalf("healthy member starved at datagram %d: %v", i, err)
		}
	}
}

// TestFailureCounterResetsOnSuccess: the eviction count is of consecutive
// failures — one success wipes the slate, so a flaky member that delivers
// intermittently is never evicted. A real socket cannot be made to fail and
// then succeed on demand, so this drives the in-package counters directly.
func TestFailureCounterResetsOnSuccess(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	g := Group{Video: 2, Channel: 1}
	rcv, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	if err := hub.Join(g, rcv.Addr()); err != nil {
		t.Fatal(err)
	}
	ap := addrPort(rcv.Addr())

	for i := 0; i < EvictAfterFailures-1; i++ {
		hub.noteFailure(g, ap)
	}
	if hub.Members(g) != 1 {
		t.Fatal("member evicted one failure early")
	}
	if hub.nfailing.Load() != 1 {
		t.Errorf("nfailing = %d, want 1", hub.nfailing.Load())
	}
	hub.noteSuccess(g, ap)
	if hub.nfailing.Load() != 0 {
		t.Errorf("nfailing after success = %d, want 0", hub.nfailing.Load())
	}
	// The slate is clean: another EvictAfterFailures-1 failures still do
	// not evict...
	for i := 0; i < EvictAfterFailures-1; i++ {
		hub.noteFailure(g, ap)
	}
	if hub.Members(g) != 1 {
		t.Fatal("failure counter survived an intervening success")
	}
	// ...but one more does.
	hub.noteFailure(g, ap)
	if hub.Members(g) != 0 {
		t.Fatal("member not evicted at the threshold")
	}
	if hub.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", hub.Evictions())
	}
	if hub.nfailing.Load() != 0 {
		t.Errorf("nfailing after eviction = %d, want 0", hub.nfailing.Load())
	}
	// Leave of an already-evicted member is a no-op, and a failure record
	// for a departed member is dropped with it.
	hub.Leave(g, rcv.Addr())
}

// TestSendCounters: byte and datagram counters advance together.
func TestSendCounters(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	rcv, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	g := Group{Video: 0, Channel: 1}
	if err := hub.Join(g, rcv.Addr()); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 100)
	for i := 0; i < 5; i++ {
		if _, err := hub.Send(g, frame); err != nil {
			t.Fatal(err)
		}
	}
	if hub.Sent() != 5 || hub.SentBytes() != 500 || hub.SendFailures() != 0 {
		t.Errorf("counters: sent=%d bytes=%d failed=%d, want 5/500/0",
			hub.Sent(), hub.SentBytes(), hub.SendFailures())
	}
}

// TestSendZeroAlloc is the alloc gate for the fan-out hot path: a Send to
// a populated group must not allocate — no member snapshot copies, no
// sockaddr conversions.
func TestSendZeroAlloc(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	g := Group{Video: 0, Channel: 1}
	var rcvs []*Receiver
	for i := 0; i < 4; i++ {
		r, err := NewReceiver()
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		rcvs = append(rcvs, r)
		if err := hub.Join(g, r.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; alloc count is meaningless")
	}
	frame := make([]byte, 1052)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := hub.Send(g, frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Send allocates %v objects per call, want 0", allocs)
	}
}

// TestJoinLeaveDuringSend hammers membership churn against concurrent
// sends; under -race this proves the copy-on-write snapshots publish
// safely with no locking on the send side.
func TestJoinLeaveDuringSend(t *testing.T) {
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	rcv, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	g := Group{Video: 2, Channel: 3}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := hub.Join(g, rcv.Addr()); err != nil {
				return
			}
			hub.Leave(g, rcv.Addr())
		}
	}()
	frame := []byte("churn")
	for i := 0; i < 2000; i++ {
		if _, err := hub.Send(g, frame); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	close(done)
	wg.Wait()
}

// BenchmarkHubSend measures the per-datagram fan-out cost to one member —
// the unit of work every channel pacer pays per chunk.
func BenchmarkHubSend(b *testing.B) {
	hub, err := NewHub()
	if err != nil {
		b.Fatal(err)
	}
	defer hub.Close()
	rcv, err := NewReceiver()
	if err != nil {
		b.Fatal(err)
	}
	defer rcv.Close()
	g := Group{Video: 0, Channel: 1}
	if err := hub.Join(g, rcv.Addr()); err != nil {
		b.Fatal(err)
	}
	// Drain in the background so the receiver's kernel buffer never
	// backpressures the benchmark loop.
	go func() {
		buf := make([]byte, 2048)
		for {
			if _, _, err := rcv.Conn.ReadFromUDPAddrPort(buf); err != nil {
				return
			}
		}
	}()
	frame := make([]byte, 1052)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hub.Send(g, frame); err != nil {
			b.Fatal(err)
		}
	}
}
