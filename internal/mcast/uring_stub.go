//go:build !linux || (!amd64 && !arm64)

// Portable stubs for the io_uring cross-shard submission path. On
// platforms without it EnableUring reports unsupported, so uringOn is
// never set and the batch path routes straight to the platform writer.
package mcast

import "fmt"

// uringCompiled reports at compile time whether this build contains the
// io_uring path.
const uringCompiled = false

// uRing has no state on platforms without the io_uring path.
type uRing struct{}

// EnableUring reports that the io_uring path is not available here; the
// caller logs one notice and keeps the direct egress path.
func (h *Hub) EnableUring() error {
	return fmt.Errorf("mcast: io_uring egress is not supported on this platform")
}

// writeDestsUring is unreachable on this platform — uringOn is never
// set — and reports not-taken so a misrouted batch would still go out
// through the direct path.
func (h *Hub) writeDestsUring([]dest) (error, bool) { return nil, false }

// closeUring is a no-op: there is no ring to tear down.
func (h *Hub) closeUring() {}
