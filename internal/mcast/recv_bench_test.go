package mcast

import (
	"fmt"
	"testing"
)

// benchSharedRecvDrain measures the ingress ladder at a given burst
// size: one SendBatch of burst same-group chunks per iteration, drained
// through the shared receiver on the named rung. datagrams/readsyscall
// is the acceptance metric — the single-read path pays one syscall per
// datagram by construction; the batched rungs amortize.
func benchSharedRecvDrain(b *testing.B, burst int, mode string) {
	s, err := NewSharedReceiverConfigured(SharedReceiverConfig{Classify: testClassify})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	switch mode {
	case "single":
		s.SetRecvBatched(false)
	case "recvmmsg":
		if !s.SetRecvBatched(true) {
			b.Skip("recvmmsg rung unavailable on this platform/kernel")
		}
		s.SetGRO(false)
	case "gro":
		if !s.SetRecvBatched(true) || !s.SetGRO(true) {
			b.Skip("GRO rung unavailable on this platform/kernel")
		}
	}
	g := Group{Video: 0, Channel: 0}
	sub, err := s.Subscribe(g, 2*burst+16, 2048)
	if err != nil {
		b.Fatal(err)
	}
	hub, err := NewHub()
	if err != nil {
		b.Fatal(err)
	}
	defer hub.Close()
	if hub.SetVectorized(true) && mode == "gro" {
		hub.SetGSO(true) // super-frames on the wire, the shape GRO coalesces
	}
	if err := hub.Join(g, s.Addr()); err != nil {
		b.Fatal(err)
	}
	frame := testFrame(g, 1052)
	entries := make([]BatchEntry, burst)
	for i := range entries {
		entries[i] = BatchEntry{Group: g, Frame: frame}
	}
	b.SetBytes(int64(burst * len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hub.SendBatch(entries); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < burst; j++ {
			slot, ok := <-sub.Ready()
			if !ok {
				b.Fatal("subscription closed mid-benchmark")
			}
			sub.Release(slot)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Delivered())/b.Elapsed().Seconds(), "datagrams/s")
	if rs := s.ReadSyscalls(); rs > 0 {
		b.ReportMetric(float64(s.Delivered())/float64(rs), "datagrams/readsyscall")
	}
	if gs := s.GROSegments(); gs > 0 {
		b.ReportMetric(float64(gs)/float64(b.N), "grosegments/op")
	}
}

// BenchmarkSharedReceiverDrain is the ingress acceptance benchmark:
// 1/8/64-datagram bursts drained through each rung of the ladder. The
// ≥4× syscall-amortization criterion reads mode=single against
// mode=recvmmsg (and mode=gro) at burst=64.
func BenchmarkSharedReceiverDrain(b *testing.B) {
	for _, burst := range []int{1, 8, 64} {
		for _, mode := range []string{"single", "recvmmsg", "gro"} {
			b.Run(fmt.Sprintf("burst=%d/mode=%s", burst, mode), func(b *testing.B) {
				benchSharedRecvDrain(b, burst, mode)
			})
		}
	}
}
