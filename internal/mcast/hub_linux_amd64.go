package mcast

// sysSendmmsg is linux/amd64's sendmmsg(2) number. The stdlib syscall
// tables were frozen before the syscall existed, so it is spelled out
// here (see arch/x86/entry/syscalls/syscall_64.tbl).
const sysSendmmsg = 307
