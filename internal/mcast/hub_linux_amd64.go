package mcast

// sysSendmmsg and sysRecvmmsg are linux/amd64's sendmmsg(2) and
// recvmmsg(2) numbers. The stdlib syscall tables were frozen before the
// syscalls existed, so they are spelled out here (see
// arch/x86/entry/syscalls/syscall_64.tbl).
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
