package mcast

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// recvGoldenFrame builds a size-byte frame for group g whose bytes
// [4:10) carry a unique six-character tag, so per-subscription delivery
// sequences stay comparable across receive paths.
func recvGoldenFrame(g Group, tag string, size int) []byte {
	f := testFrame(g, size)
	copy(f[4:], tag)
	return f
}

func recvTag(frame []byte) string { return string(frame[4:10]) }

// runRecvPath drives one scripted workload through a fresh shared
// receiver forced onto the named ingress rung and returns every group's
// ordered delivery sequence. The script mixes GSO-coalescible same-group
// runs (including a short final segment), interleaved groups, and plain
// singles — every shape the split logic must keep in order. nil means the
// rung is unavailable on this platform/kernel.
func runRecvPath(t *testing.T, mode string) map[Group][]string {
	t.Helper()
	s, err := NewSharedReceiverConfigured(SharedReceiverConfig{Classify: testClassify, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	switch mode {
	case "single":
		s.SetRecvBatched(false)
	case "recvmmsg":
		if !s.SetRecvBatched(true) {
			return nil
		}
		s.SetGRO(false)
	case "gro":
		if !s.SetRecvBatched(true) || !s.SetGRO(true) {
			return nil
		}
	}

	gA, gB := Group{Video: 7, Channel: 0}, Group{Video: 7, Channel: 1}
	subA, err := s.Subscribe(gA, 64, 2048)
	if err != nil {
		t.Fatal(err)
	}
	subB, err := s.Subscribe(gB, 64, 2048)
	if err != nil {
		t.Fatal(err)
	}

	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	// Super-frames on the wire when the platform offers them — the shape
	// the GRO rung exists to receive; without GSO the same script arrives
	// pre-segmented and the sequences must still match.
	if hub.SetVectorized(true) {
		hub.SetGSO(true)
	}
	for _, g := range []Group{gA, gB} {
		if err := hub.Join(g, s.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	var run []BatchEntry
	for i := 0; i < 8; i++ { // coalescible run: 8 equal gA frames
		run = append(run, BatchEntry{Group: gA, Frame: recvGoldenFrame(gA, fmt.Sprintf("a%05d", i), 1052)})
	}
	if _, err := hub.SendBatch(run); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Send(gA, recvGoldenFrame(gA, "a00008", 1052)); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.SendBatch([]BatchEntry{ // interleaved: runs of one
		{Group: gA, Frame: recvGoldenFrame(gA, "a00009", 500)},
		{Group: gB, Frame: recvGoldenFrame(gB, "b00000", 500)},
		{Group: gA, Frame: recvGoldenFrame(gA, "a00010", 500)},
		{Group: gB, Frame: recvGoldenFrame(gB, "b00001", 500)},
	}); err != nil {
		t.Fatal(err)
	}
	tail := []BatchEntry{ // equal segments + short final, one super-frame
		{Group: gB, Frame: recvGoldenFrame(gB, "b00002", 1052)},
		{Group: gB, Frame: recvGoldenFrame(gB, "b00003", 1052)},
		{Group: gB, Frame: recvGoldenFrame(gB, "b00004", 1052)},
		{Group: gB, Frame: recvGoldenFrame(gB, "b00005", 100)},
	}
	if _, err := hub.SendBatch(tail); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Send(gB, recvGoldenFrame(gB, "b00006", 100)); err != nil {
		t.Fatal(err)
	}

	want := map[Group]int{gA: 11, gB: 7}
	got := make(map[Group][]string)
	for g, sub := range map[Group]*Subscription{gA: subA, gB: subB} {
		for i := 0; i < want[g]; i++ {
			slot := drain(t, sub)
			got[g] = append(got[g], recvTag(sub.Frame(slot)))
			sub.Release(slot)
		}
	}
	if s.Dropped() != 0 || s.Unroutable() != 0 {
		t.Errorf("%s: dropped=%d unroutable=%d, want 0/0", mode, s.Dropped(), s.Unroutable())
	}
	if mode == "gro" && s.GRO() && hub.Superframes() > 0 && s.GROSegments() == 0 {
		t.Errorf("gro: %d super-frames on the wire but GROSegments = 0; coalesced receive never engaged", hub.Superframes())
	}
	if mode != "single" && s.RecvBatched() && s.BatchedReads() == 0 {
		t.Errorf("%s: BatchedReads = 0; the batched rung never engaged", mode)
	}
	return got
}

// TestRecvPathsIdentical is the fan-in half of the golden equivalence
// gate, mirroring TestBatchPathsIdentical: the portable single-read
// path, the recvmmsg rung, and the GRO rung on top of it must deliver
// identical per-subscription sequences — same frames, same order — for
// a workload that includes the GSO super-frames GRO exists to split.
// Unavailable rungs are logged and skipped; the single-read baseline
// always runs.
func TestRecvPathsIdentical(t *testing.T) {
	base := runRecvPath(t, "single")
	for _, mode := range []string{"recvmmsg", "gro"} {
		got := runRecvPath(t, mode)
		if got == nil {
			t.Logf("%s rung unavailable on this platform; not compared", mode)
			continue
		}
		for g, want := range base {
			if len(got[g]) != len(want) {
				t.Fatalf("%s: group %v delivered %d frames, single-read %d", mode, g, len(got[g]), len(want))
			}
			for i := range want {
				if got[g][i] != want[i] {
					t.Fatalf("%s: group %v frame %d = %q, single-read %q", mode, g, i, got[g][i], want[i])
				}
			}
		}
	}
}

// TestRecvKillSwitch pins graceful degradation of the ingress ladder,
// mirroring TestGSOKillSwitch: each kill-switch leaves a fresh receiver
// on the rung below, unable to be forced back up, and still delivering —
// including the hub's super-frames, which must arrive kernel-segmented
// once GRO is declined.
func TestRecvKillSwitch(t *testing.T) {
	t.Run("recvmmsg", func(t *testing.T) {
		t.Setenv(NoRecvmmsgEnv, "1")
		s, err := NewSharedReceiverConfigured(SharedReceiverConfig{Classify: testClassify, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if s.RecvBatched() || s.GRO() {
			t.Fatalf("RecvBatched=%v GRO=%v despite the kill-switch, want false/false", s.RecvBatched(), s.GRO())
		}
		if s.SetRecvBatched(true) {
			t.Error("SetRecvBatched(true) re-armed a kill-switched receiver")
		}
		if s.SetGRO(true) {
			t.Error("SetGRO(true) armed GRO without the recvmmsg rung it rides")
		}
		assertRecvStillDelivers(t, s)
	})

	t.Run("gro", func(t *testing.T) {
		t.Setenv(NoGROEnv, "1")
		var notices []string
		s, err := NewSharedReceiverConfigured(SharedReceiverConfig{Classify: testClassify,
			Logf: func(f string, a ...any) { notices = append(notices, fmt.Sprintf(f, a...)) }})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if s.GRO() {
			t.Fatal("receiver has GRO on despite the kill-switch")
		}
		if s.SetGRO(true) {
			t.Error("SetGRO(true) re-armed a kill-switched receiver")
		}
		if recvCompiled && s.RecvBatched() {
			if got := s.GROFallbacks(); got != 1 {
				t.Errorf("GROFallbacks = %d, want 1", got)
			}
			count := 0
			for _, n := range notices {
				if strings.Contains(n, NoGROEnv) {
					count++
				}
			}
			if count != 1 {
				t.Errorf("got %d kill-switch notices, want exactly 1: %q", count, notices)
			}
		}
		assertRecvStillDelivers(t, s)
	})
}

// assertRecvStillDelivers proves a degraded receiver still works: a
// coalescible same-group batch — a super-frame where the hub's GSO path
// is live — arrives complete and in order.
func assertRecvStillDelivers(t *testing.T, s *SharedReceiver) {
	t.Helper()
	g := Group{Video: 8, Channel: 0}
	sub, err := s.Subscribe(g, 16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if hub.SetVectorized(true) {
		hub.SetGSO(true)
	}
	if err := hub.Join(g, s.Addr()); err != nil {
		t.Fatal(err)
	}
	var entries []BatchEntry
	for i := 0; i < 4; i++ {
		entries = append(entries, BatchEntry{Group: g, Frame: recvGoldenFrame(g, fmt.Sprintf("k%05d", i), 1052)})
	}
	if _, err := hub.SendBatch(entries); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		slot := drain(t, sub)
		if got, want := recvTag(sub.Frame(slot)), fmt.Sprintf("k%05d", i); got != want {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
		sub.Release(slot)
	}
}

// TestRecvErrorBackoff pins the read-error latch: a persistently failing
// read (here a read deadline in the past) is counted and backed off —
// tens of wakeups over the window, not a spinning core's millions — and
// a later successful read resumes delivery.
func TestRecvErrorBackoff(t *testing.T) {
	s, err := NewSharedReceiver(0, testClassify)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := Group{Video: 9, Channel: 0}
	sub, err := s.Subscribe(g, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.conn.SetReadDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	errs := s.ReadErrors()
	if errs == 0 {
		t.Fatal("ReadErrors = 0; the failing reads were not counted")
	}
	if errs > 1000 {
		t.Errorf("ReadErrors = %d over 300ms; the error path is spinning, want backoff", errs)
	}
	if err := s.conn.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}

	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if err := hub.Join(g, s.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Send(g, testFrame(g, 64)); err != nil {
		t.Fatal(err)
	}
	slot := drain(t, sub)
	if len(sub.Frame(slot)) != 64 {
		t.Fatalf("got %d bytes after recovery, want 64", len(sub.Frame(slot)))
	}
	sub.Release(slot)
}

// TestIngressStatsAggregates pins the process-wide ledger: a receiver's
// counters remain visible through IngressStats after it is closed.
func TestIngressStatsAggregates(t *testing.T) {
	before := IngressStats()
	s, err := NewSharedReceiver(0, testClassify)
	if err != nil {
		t.Fatal(err)
	}
	g := Group{Video: 9, Channel: 1}
	sub, err := s.Subscribe(g, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if err := hub.Join(g, s.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Send(g, testFrame(g, 64)); err != nil {
		t.Fatal(err)
	}
	sub.Release(drain(t, sub))
	live := IngressStats()
	if live.ReadSyscalls <= before.ReadSyscalls {
		t.Errorf("live ReadSyscalls = %d, want > %d", live.ReadSyscalls, before.ReadSyscalls)
	}
	syscalls := s.ReadSyscalls()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	after := IngressStats()
	if after.ReadSyscalls < before.ReadSyscalls+syscalls {
		t.Errorf("retired ReadSyscalls = %d, want >= %d: closed receiver fell out of the ledger",
			after.ReadSyscalls, before.ReadSyscalls+syscalls)
	}
}
