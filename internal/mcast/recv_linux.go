//go:build linux && (amd64 || arm64)

// The ingress ladder's fast rungs: recvmmsg(2) batched receive and UDP
// GRO coalesced receive — the mirror image of hub_linux.go and
// gso_linux.go. One recvmmsg call drains up to the configured batch of
// datagrams into a reusable buffer ring, so a burst of 64 costs one
// kernel crossing instead of 64; with UDP_GRO armed on top, the kernel
// hands a whole super-frame burst (the shape gso_linux.go emits) over as
// ONE coalesced buffer plus a cmsg naming the segment size, and the
// split back into wire-sized frames happens in userspace — one traversal
// of the stack per burst, closing the send/receive symmetry.
//
// Everything the syscall needs lives in one recvBuf owned by the read
// goroutine, so the steady-state batched read allocates nothing. The
// platform restriction matches hub_linux.go (stdlib Msghdr layout and
// the hardcoded syscall numbers); every other platform compiles
// recv_stub.go and reads one datagram per syscall.
package mcast

import (
	"os"
	"syscall"
	"unsafe"
)

// recvCompiled reports at compile time whether this build contains the
// batched-receive fast path; tests use it to decide what the
// kill-switches can prove.
const recvCompiled = true

const (
	// udpGRO is the UDP_GRO socket option / cmsg type (linux >= 5.0);
	// hardcoded like udpSegment because the stdlib tables predate it.
	udpGRO = 104

	// msgDontwait keeps recvmmsg from blocking in the kernel: the read
	// loop parks on the runtime netpoller (RawConn.Read) instead, so
	// Close and deadlines keep working.
	msgDontwait = 0x40
)

// groCmsg is the control message the kernel attaches to a coalesced
// receive, laid out as cmsg(3) requires on these 64-bit targets: an
// 8-byte-aligned cmsghdr followed by the segment size. Unlike the
// send-side UDP_SEGMENT cmsg (uint16), the receive side carries an int —
// the kernel puts sizeof(int) bytes — so CmsgLen(4)=20, padded to
// CmsgSpace(4)=24.
type groCmsg struct {
	len   uint64
	level int32
	typ   int32
	size  int32
	_     [4]byte
}

// recvBuf is the reusable state of the batched read loop: fixed syscall
// arrays sized to the batch ceiling, one contiguous maxDatagram-strided
// buffer ring the iovecs point into, and the frame views rebuilt from it
// after every drain. It is owned by the run goroutine; fn is the
// pre-bound RawConn.Read callback (bound once so the hot path never
// allocates a closure).
type recvBuf struct {
	hdrs  [DefaultRecvBatch]mmsghdr
	iovs  [DefaultRecvBatch]syscall.Iovec
	ctrls [DefaultRecvBatch]groCmsg
	bufs  []byte

	frames [][]byte
	vlen   int
	n      int
	errno  syscall.Errno
	s      *SharedReceiver
	fn     func(fd uintptr) bool
}

// initRecv arms the ingress ladder at receiver creation: the recvmmsg
// rung first (declined silently by SKYSCRAPER_NO_RECVMMSG — the fallback
// is behavior-identical, mirroring initVectorized — and probed against
// the kernel), then the GRO rung on top of it (declined by
// SKYSCRAPER_NO_GRO or a failed sockopt, each logged once and counted in
// GROFallbacks). A batch of 1 pins the portable path outright.
func (s *SharedReceiver) initRecv() {
	if s.batch <= 1 {
		return
	}
	if os.Getenv(NoRecvmmsgEnv) != "" {
		return
	}
	rc, err := s.conn.SyscallConn()
	if err != nil {
		return
	}
	s.rc = rc
	if !s.probeRecvmmsg() {
		s.logf("mcast: kernel lacks recvmmsg; shared receiver falls back to per-datagram reads")
		return
	}
	rb := &recvBuf{s: s}
	rb.fn = rb.step
	rb.bufs = make([]byte, s.batch*maxDatagram)
	rb.frames = make([][]byte, 0, s.batch)
	s.rb = rb
	s.mmsgCapable = true
	s.mmsgOn.Store(true)

	// The GRO rung rides the batched reader: only the cmsg-aware recvmmsg
	// path may ever read a socket with UDP_GRO armed (a plain read would
	// deliver a coalesced buffer as one giant frame), so GRO is not
	// offered without it.
	if os.Getenv(NoGROEnv) != "" {
		s.groFallbacks.Inc()
		s.logf("mcast: UDP GRO disabled via %s; super-frames arrive kernel-segmented", NoGROEnv)
		return
	}
	if !s.setGROSockopt(true) {
		s.groFallbacks.Inc()
		s.logf("mcast: kernel rejected UDP_GRO; super-frames arrive kernel-segmented")
		return
	}
	s.groCapable = true
	s.groOn.Store(true)
}

// probeRecvmmsg asks the kernel whether recvmmsg exists. A zero-length
// vector returns 0 immediately on supporting kernels — no datagram is
// consumed, no block — and ENOSYS where the syscall is missing.
func (s *SharedReceiver) probeRecvmmsg() bool {
	ok := false
	if err := s.rc.Control(func(fd uintptr) {
		_, _, errno := syscall.Syscall6(sysRecvmmsg, fd, 0, 0, msgDontwait, 0, 0)
		ok = errno != syscall.ENOSYS
	}); err != nil {
		return false
	}
	return ok
}

// setGROSockopt flips UDP_GRO on the shared socket, reporting success.
func (s *SharedReceiver) setGROSockopt(on bool) bool {
	v := 0
	if on {
		v = 1
	}
	ok := false
	if err := s.rc.Control(func(fd uintptr) {
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, v) == nil
	}); err != nil {
		return false
	}
	return ok
}

// SetRecvBatched is a test hook that forces the recvmmsg rung on or off,
// returning whether it is now active. Disabling it also disarms GRO
// first — a socket with UDP_GRO set must never be read without cmsg
// access. Enabling fails where the creation-time probe did not pass.
func (s *SharedReceiver) SetRecvBatched(on bool) bool {
	if !on {
		s.SetGRO(false)
		s.mmsgOn.Store(false)
		return false
	}
	if !s.mmsgCapable {
		return false
	}
	s.mmsgOn.Store(true)
	return true
}

// SetGRO is a test hook that forces the GRO rung on or off, returning
// whether it is now active. Enabling fails where the creation-time
// sockopt did not take or the recvmmsg rung it rides is off.
func (s *SharedReceiver) SetGRO(on bool) bool {
	if !on {
		if s.groOn.CompareAndSwap(true, false) {
			s.setGROSockopt(false)
		}
		return false
	}
	if !s.groCapable || !s.mmsgOn.Load() {
		return false
	}
	if !s.setGROSockopt(true) {
		return false
	}
	s.groOn.Store(true)
	return true
}

// readBatched drains one recvmmsg batch and dispatches it under a single
// subscription-snapshot load. It returns false only when the receiver is
// closed. An EINVAL/ENOSYS from the real call after a passing probe
// demotes the receiver to the portable rung for good (disarming GRO
// first) — failing every read would be worse than losing the
// optimization; other errors go through the shared backoff tail.
func (s *SharedReceiver) readBatched() bool {
	rb := s.rb
	rb.prepare()
	if err := s.rc.Read(rb.fn); err != nil {
		return s.noteReadError()
	}
	if rb.errno != 0 {
		switch rb.errno {
		case syscall.EINTR:
			return true
		case syscall.EINVAL, syscall.ENOSYS:
			if s.mmsgOn.CompareAndSwap(true, false) {
				s.SetGRO(false)
				s.logf("mcast: kernel rejected recvmmsg (%v); demoting to per-datagram reads", rb.errno)
			}
			return true
		default:
			return s.noteReadError()
		}
	}
	s.errStreak = 0
	frames := rb.split()
	s.batchedReads.Add(int64(len(frames)))
	s.dispatchFrames(frames)
	return true
}

// prepare resets the syscall arrays for one drain. The kernel mutates
// headers in place (namelen, controllen, flags), so every field it
// touches is rewritten each cycle; the cmsg buffers are attached only
// while the GRO rung is live.
func (rb *recvBuf) prepare() {
	rb.n = 0
	rb.errno = 0
	rb.vlen = rb.s.batch
	gro := rb.s.groOn.Load()
	for i := 0; i < rb.vlen; i++ {
		iov := &rb.iovs[i]
		iov.Base = &rb.bufs[i*maxDatagram]
		iov.SetLen(maxDatagram)

		hdr := &rb.hdrs[i].hdr
		hdr.Name = nil
		hdr.Namelen = 0
		hdr.Iov = iov
		hdr.Iovlen = 1
		if gro {
			c := &rb.ctrls[i]
			*c = groCmsg{}
			hdr.Control = (*byte)(unsafe.Pointer(c))
			hdr.Controllen = uint64(unsafe.Sizeof(*c))
		} else {
			hdr.Control = nil
			hdr.Controllen = 0
		}
		hdr.Flags = 0
		rb.hdrs[i].n = 0
	}
}

// step is the RawConn.Read callback: one recvmmsg attempt per wakeup.
// Returning false parks the goroutine on the netpoller until the socket
// is readable; returning true hands control back to readBatched with
// either a drained batch (n) or a stashed errno. recvmmsg errors only
// when its first datagram fails, so partial success is just a shorter
// batch.
func (rb *recvBuf) step(fd uintptr) bool {
	for {
		r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&rb.hdrs[0])), uintptr(rb.vlen), msgDontwait, 0, 0)
		rb.s.readSyscalls.Inc()
		if errno != 0 {
			switch errno {
			case syscall.EAGAIN:
				return false
			case syscall.EINTR:
				continue
			default:
				rb.errno = errno
				return true
			}
		}
		rb.n = int(r1)
		return true
	}
}

// split rebuilds the frame views from the drained batch. A message whose
// cmsg names a segment size smaller than its payload is a GRO-coalesced
// super-frame: it is cut back into segment-sized wire frames (a shorter
// final segment allowed, exactly the shape the GSO sender built), in
// order, so downstream dispatch sees the same sequence the wire carried.
// Everything else passes through whole.
func (rb *recvBuf) split() [][]byte {
	frames := rb.frames[:0]
	for i := 0; i < rb.n; i++ {
		b := rb.bufs[i*maxDatagram : i*maxDatagram+int(rb.hdrs[i].n)]
		seg := 0
		if c := &rb.ctrls[i]; rb.hdrs[i].hdr.Controllen >= uint64(syscall.CmsgLen(4)) &&
			c.level == solUDP && c.typ == udpGRO && c.len >= uint64(syscall.CmsgLen(4)) {
			seg = int(c.size)
		}
		if seg > 0 && len(b) > seg {
			nseg := 0
			for len(b) > seg {
				frames = append(frames, b[:seg])
				b = b[seg:]
				nseg++
			}
			frames = append(frames, b)
			nseg++
			rb.s.groSegments.Add(int64(nseg))
		} else {
			frames = append(frames, b)
		}
	}
	rb.frames = frames
	return frames
}
