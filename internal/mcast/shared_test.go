package mcast

import (
	"encoding/binary"
	"testing"
	"time"
)

// testClassify routes test datagrams by a 4-byte (video, channel) prefix —
// a stand-in for wire.PeekID that keeps this package's tests free of the
// framing dependency, exactly as production callers keep the dependency
// out of this package.
func testClassify(frame []byte) (Group, bool) {
	if len(frame) < 4 {
		return Group{}, false
	}
	return Group{
		Video:   int(binary.BigEndian.Uint16(frame[0:])),
		Channel: int(binary.BigEndian.Uint16(frame[2:])),
	}, true
}

func testFrame(g Group, size int) []byte {
	frame := make([]byte, size)
	binary.BigEndian.PutUint16(frame[0:], uint16(g.Video))
	binary.BigEndian.PutUint16(frame[2:], uint16(g.Channel))
	return frame
}

// drain receives one slot with a timeout, failing the test on silence.
func drain(t *testing.T, sub *Subscription) int {
	t.Helper()
	select {
	case slot, ok := <-sub.Ready():
		if !ok {
			t.Fatal("ready channel closed early")
		}
		return slot
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery within 5s")
	}
	return -1
}

// TestSharedReceiverRoutes: datagrams sent through a hub to the shared
// socket land on the subscription of their group, and only there.
func TestSharedReceiverRoutes(t *testing.T) {
	s, err := NewSharedReceiver(0, testClassify)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ga, gb := Group{Video: 0, Channel: 1}, Group{Video: 0, Channel: 2}
	subA, err := s.Subscribe(ga, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	subB, err := s.Subscribe(gb, 8, 256)
	if err != nil {
		t.Fatal(err)
	}

	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	for _, g := range []Group{ga, gb} {
		if err := hub.Join(g, s.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	frameA := testFrame(ga, 100)
	frameA[50] = 0xAB
	if _, err := hub.Send(ga, frameA); err != nil {
		t.Fatal(err)
	}
	slot := drain(t, subA)
	got := subA.Frame(slot)
	if len(got) != 100 || got[50] != 0xAB {
		t.Fatalf("subscription A got %d bytes (byte 50 = %#x), want the 100-byte frame", len(got), got[50])
	}
	subA.Release(slot)

	if _, err := hub.Send(gb, testFrame(gb, 60)); err != nil {
		t.Fatal(err)
	}
	if slot := drain(t, subB); len(subB.Frame(slot)) != 60 {
		t.Fatalf("subscription B got %d bytes, want 60", len(subB.Frame(slot)))
	}
	select {
	case slot := <-subA.Ready():
		t.Fatalf("group B's datagram leaked to subscription A (%d bytes)", len(subA.Frame(slot)))
	default:
	}
	if s.Delivered() != 2 || s.Dropped() != 0 || s.Unroutable() != 0 {
		t.Errorf("counters: delivered=%d dropped=%d unroutable=%d, want 2/0/0",
			s.Delivered(), s.Dropped(), s.Unroutable())
	}
}

// TestSharedReceiverFanIn: two subscriptions on the same group each get
// their own copy of every datagram.
func TestSharedReceiverFanIn(t *testing.T) {
	s, err := NewSharedReceiver(0, testClassify)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := Group{Video: 1, Channel: 3}
	sub1, _ := s.Subscribe(g, 4, 128)
	sub2, _ := s.Subscribe(g, 4, 128)

	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if err := hub.Join(g, s.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Send(g, testFrame(g, 64)); err != nil {
		t.Fatal(err)
	}
	for i, sub := range []*Subscription{sub1, sub2} {
		if slot := drain(t, sub); len(sub.Frame(slot)) != 64 {
			t.Fatalf("subscription %d got %d bytes, want 64", i+1, len(sub.Frame(slot)))
		}
	}
}

// TestSharedReceiverDropsWhenRingFull: a subscriber that stops draining
// loses its own excess datagrams — counted, never blocking the read loop
// or its neighbors.
func TestSharedReceiverDropsWhenRingFull(t *testing.T) {
	s, err := NewSharedReceiver(0, testClassify)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := Group{Video: 0, Channel: 1}
	stuck, _ := s.Subscribe(g, 2, 128) // never drained
	live, _ := s.Subscribe(g, 8, 128)

	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if err := hub.Join(g, s.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := hub.Send(g, testFrame(g, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		live.Release(drain(t, live))
	}
	if got := stuck.Dropped(); got != 4 {
		t.Errorf("stuck subscription dropped %d datagrams, want 4 (ring depth 2 of 6 sent)", got)
	}
	if live.Dropped() != 0 {
		t.Errorf("draining subscription dropped %d datagrams, want 0", live.Dropped())
	}
}

// TestSharedReceiverOversizeAndUnroutable: frames larger than the slot
// are dropped for that subscription; frames the classifier rejects are
// counted unroutable.
func TestSharedReceiverOversizeAndUnroutable(t *testing.T) {
	s, err := NewSharedReceiver(0, testClassify)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := Group{Video: 0, Channel: 1}
	sub, _ := s.Subscribe(g, 4, 32)

	hub, err := NewHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if err := hub.Join(g, s.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Send(g, testFrame(g, 64)); err != nil { // oversize for the 32-byte slot
		t.Fatal(err)
	}
	if _, err := hub.Send(g, []byte{1, 2}); err != nil { // too short to classify
		t.Fatal(err)
	}
	if _, err := hub.Send(g, testFrame(g, 32)); err != nil { // fits
		t.Fatal(err)
	}
	if slot := drain(t, sub); len(sub.Frame(slot)) != 32 {
		t.Fatalf("got %d bytes, want the 32-byte frame", len(sub.Frame(slot)))
	}
	if sub.Dropped() != 1 || s.Unroutable() != 1 {
		t.Errorf("dropped=%d unroutable=%d, want 1/1", sub.Dropped(), s.Unroutable())
	}
}

// TestSharedReceiverCloseWakesConsumers: Close closes every
// subscription's Ready channel so consumer loops terminate.
func TestSharedReceiverCloseWakesConsumers(t *testing.T) {
	s, err := NewSharedReceiver(0, testClassify)
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := s.Subscribe(Group{Video: 0, Channel: 1}, 4, 128)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.Ready() {
		}
	}()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer not woken by Close")
	}
	if _, err := s.Subscribe(Group{Video: 0, Channel: 2}, 4, 128); err == nil {
		t.Error("Subscribe after Close succeeded")
	}
}

// TestSharedRecvZeroAlloc is the alloc gate for the fan-in hot path,
// mirroring TestSendZeroAlloc: dispatching a datagram to a populated
// group — classify, snapshot load, slot copy, handoff — must not
// allocate.
func TestSharedRecvZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	s, err := NewSharedReceiver(0, testClassify)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := Group{Video: 0, Channel: 1}
	var subs []*Subscription
	for i := 0; i < 4; i++ {
		sub, err := s.Subscribe(g, 8, 2048)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	frame := testFrame(g, 1052)
	allocs := testing.AllocsPerRun(100, func() {
		s.dispatch(frame)
		for _, sub := range subs {
			sub.Release(<-sub.Ready())
		}
	})
	if allocs != 0 {
		t.Errorf("dispatch allocates %v objects per datagram, want 0", allocs)
	}
}
