package mcast

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// TestGSOKillSwitch pins graceful degradation: with SKYSCRAPER_NO_GSO
// set, a fresh hub declines the super-frame path with exactly one logged
// notice and one counted fallback, cannot be forced back on, and still
// delivers batches through the rest of the egress ladder.
func TestGSOKillSwitch(t *testing.T) {
	t.Setenv(NoGSOEnv, "1")
	var notices []string
	hub, err := NewHubConfigured(HubConfig{Logf: func(f string, a ...any) {
		notices = append(notices, fmt.Sprintf(f, a...))
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if hub.GSO() {
		t.Fatal("hub has GSO on despite the kill-switch")
	}
	if hub.SetGSO(true) {
		t.Error("SetGSO(true) re-armed a kill-switched hub")
	}
	if gsoCompiled {
		if got := hub.GSOFallbacks(); got != 1 {
			t.Errorf("GSOFallbacks = %d, want 1", got)
		}
		count := 0
		for _, n := range notices {
			if strings.Contains(n, NoGSOEnv) {
				count++
			}
		}
		if count != 1 {
			t.Errorf("got %d kill-switch notices, want exactly 1: %q", count, notices)
		}
	}

	g := Group{Video: 5, Channel: 0}
	r, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := hub.Join(g, r.Addr()); err != nil {
		t.Fatal(err)
	}
	entries := []BatchEntry{
		{Group: g, Frame: []byte("after-kill-a")},
		{Group: g, Frame: []byte("after-kill-b")},
	}
	if n, err := hub.SendBatch(entries); err != nil || n != 2 {
		t.Fatalf("SendBatch after kill-switch = %d, %v; want 2, nil", n, err)
	}
	got := drainFrames(t, r, 2)
	if got[0] != "after-kill-a" || got[1] != "after-kill-b" {
		t.Errorf("member got %q, want [after-kill-a after-kill-b]", got)
	}
	if hub.Superframes() != 0 {
		t.Errorf("Superframes = %d after kill-switch, want 0", hub.Superframes())
	}
}

// TestGSOZeroAlloc extends the alloc gate to the super-frame path: a
// coalescible same-group batch must reach the wire without allocating.
func TestGSOZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; alloc count is meaningless")
	}
	g := Group{Video: 5, Channel: 1}
	hub, _ := newTestHub(t, []Group{g}, 4)
	if !hub.GSO() {
		t.Skip("GSO path unavailable on this platform/kernel")
	}
	frame := make([]byte, 1052)
	entries := make([]BatchEntry, 8)
	for i := range entries {
		entries[i] = BatchEntry{Group: g, Frame: frame}
	}
	// Warm the pools, then pin the steady state on one P so the pooled
	// buffers are actually reused.
	if _, err := hub.SendBatch(entries); err != nil {
		t.Fatal(err)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := hub.SendBatch(entries); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("GSO SendBatch allocates %v objects per call, want 0", allocs)
	}
	if hub.Superframes() == 0 {
		t.Error("Superframes = 0; the alloc gate did not exercise the GSO path")
	}
}

// TestUringSubmitAndTeardown pins the shared submission ring's lifecycle:
// arming it routes batches through io_uring with the ledger counting
// submits and SQEs (and GSO standing down), and Close tears the ring
// down before the socket without stranding or panicking — twice.
func TestUringSubmitAndTeardown(t *testing.T) {
	g := Group{Video: 6, Channel: 0}
	hub, rcvs := newTestHub(t, []Group{g}, 2)
	if err := hub.EnableUring(); err != nil {
		t.Skipf("io_uring unavailable: %v", err)
	}
	if !hub.UringActive() {
		t.Fatal("UringActive = false after EnableUring")
	}
	if err := hub.EnableUring(); err != nil {
		t.Fatalf("second EnableUring: %v", err)
	}
	entries := []BatchEntry{
		{Group: g, Frame: []byte("ring-a")},
		{Group: g, Frame: []byte("ring-b")},
	}
	n, err := hub.SendBatch(entries)
	if err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if n != 4 {
		t.Fatalf("SendBatch wrote %d datagrams, want 4", n)
	}
	for _, r := range rcvs[g] {
		got := drainFrames(t, r, 2)
		if got[0] != "ring-a" || got[1] != "ring-b" {
			t.Errorf("member got %q, want [ring-a ring-b]", got)
		}
	}
	if hub.UringSubmits() == 0 {
		t.Error("UringSubmits = 0, want > 0")
	}
	if got := hub.UringSQEs(); got != 4 {
		t.Errorf("UringSQEs = %d, want 4", got)
	}
	if hub.Superframes() != 0 {
		t.Errorf("Superframes = %d under the submission ring, want 0", hub.Superframes())
	}
	hub.Close()
	if hub.UringActive() {
		t.Error("UringActive = true after Close")
	}
	if _, err := hub.SendBatch(entries); err == nil {
		t.Error("SendBatch on closed hub succeeded, want error")
	}
	hub.Close() // second Close must be safe with the ring gone
}

// benchSuperframe measures a coalescible batch — runLen same-group chunks
// per SendBatch — with the super-frame path on or off, so the GSO rows in
// BENCH_egress.json read against a sendmmsg baseline over the identical
// workload.
func benchSuperframe(b *testing.B, members, runLen int, gso bool) {
	g := Group{Video: 0, Channel: 0}
	hub, rcvs := newTestHub(b, []Group{g}, members)
	if !hub.SetVectorized(true) {
		b.Skip("vectorized path unavailable on this platform")
	}
	if on := hub.SetGSO(gso); on != gso && gso {
		b.Skip("GSO path unavailable on this platform/kernel")
	}
	for _, rs := range rcvs {
		for _, r := range rs {
			go func(r *Receiver) {
				buf := make([]byte, 2048)
				for {
					if _, _, err := r.Conn.ReadFromUDPAddrPort(buf); err != nil {
						return
					}
				}
			}(r)
		}
	}
	frame := make([]byte, 1052)
	entries := make([]BatchEntry, runLen)
	for i := range entries {
		entries[i] = BatchEntry{Group: g, Frame: frame}
	}
	b.SetBytes(int64(members * runLen * len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hub.SendBatch(entries); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(hub.Sent())/b.Elapsed().Seconds(), "datagrams/s")
	if s := hub.SendSyscalls(); s > 0 {
		b.ReportMetric(float64(hub.Sent())/float64(s), "datagrams/syscall")
	}
	if sf := hub.Superframes(); sf > 0 {
		b.ReportMetric(float64(hub.GSOSegments())/float64(sf), "segments/superframe")
	}
}

// BenchmarkEgressSuperframe is the GSO acceptance benchmark: an 8-chunk
// same-group batch (a typical catch-up run) fanned out to 1/8/64 members,
// with the super-frame path on (path=gso) against the plain sendmmsg
// baseline (path=sendmmsg) over the identical workload — the
// datagrams/syscall delta is the point.
func BenchmarkEgressSuperframe(b *testing.B) {
	for _, members := range []int{1, 8, 64} {
		for _, gso := range []bool{true, false} {
			path := "sendmmsg"
			if gso {
				path = "gso"
			}
			b.Run(fmt.Sprintf("members=%d/path=%s", members, path), func(b *testing.B) {
				benchSuperframe(b, members, 8, gso)
			})
		}
	}
}

// BenchmarkEgressUring runs the same 8-chunk batch through the shared
// io_uring submission ring, reporting the achieved SQE depth next to the
// datagram rate.
func BenchmarkEgressUring(b *testing.B) {
	for _, members := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			g := Group{Video: 0, Channel: 0}
			hub, rcvs := newTestHub(b, []Group{g}, members)
			if err := hub.EnableUring(); err != nil {
				b.Skipf("io_uring unavailable: %v", err)
			}
			for _, rs := range rcvs {
				for _, r := range rs {
					go func(r *Receiver) {
						buf := make([]byte, 2048)
						for {
							if _, _, err := r.Conn.ReadFromUDPAddrPort(buf); err != nil {
								return
							}
						}
					}(r)
				}
			}
			frame := make([]byte, 1052)
			entries := make([]BatchEntry, 8)
			for i := range entries {
				entries[i] = BatchEntry{Group: g, Frame: frame}
			}
			b.SetBytes(int64(members * 8 * len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hub.SendBatch(entries); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(hub.Sent())/b.Elapsed().Seconds(), "datagrams/s")
			if s := hub.UringSubmits(); s > 0 {
				b.ReportMetric(float64(hub.UringSQEs())/float64(s), "sqes/submit")
			}
		})
	}
}
