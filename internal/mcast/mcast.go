// Package mcast provides the multicast substrate for the live broadcast
// demo. The paper assumes "the multicast facility of modern communication
// networks"; on a single machine we substitute a hub that fans each
// group send out to every joined receiver over loopback UDP — semantically
// a multicast group (senders are unaware of membership; receivers join and
// leave at will), physically unicast datagrams, which preserves exactly the
// delivery behavior the broadcasting schemes depend on.
//
// Membership is kept in copy-on-write snapshots behind an atomic pointer:
// Join and Leave copy under a mutex, while Send — the per-datagram hot
// path of every channel pacer — reads the current snapshot with no locking
// and no allocation. Delivery is best-effort, as multicast is: one
// failing receiver never starves the rest of the group.
package mcast

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"syscall"

	"skyscraper/internal/metrics"
)

// Group identifies one logical broadcast channel: a (video, channel) pair.
type Group struct {
	Video   int
	Channel int
}

// String implements fmt.Stringer.
func (g Group) String() string { return fmt.Sprintf("video%d/ch%d", g.Video, g.Channel) }

// Sender is the hub's datagram fan-out, factored out so a fault-injection
// layer (internal/faults) can interpose between the channel pacers and the
// wire without the pacers knowing.
type Sender interface {
	// Send delivers one datagram to every current member of g, returning
	// how many receivers it was written to.
	Send(g Group, frame []byte) (int, error)
}

// membership is one immutable snapshot of every group's subscribers.
// Snapshots are never mutated after publication; Join and Leave build a
// replacement and swap the pointer.
type membership map[Group][]netip.AddrPort

// EvictAfterFailures is how many consecutive send failures remove a member
// from its group: a receiver whose address errors on every write (torn
// down, unroutable) would otherwise be re-tried on every datagram forever,
// taxing each broadcast with a doomed syscall. One success resets the
// count, so a flaky-but-alive member is never evicted.
const EvictAfterFailures = 8

// memberKey identifies one (group, member) edge for failure tracking.
type memberKey struct {
	g  Group
	ap netip.AddrPort
}

// Hub is the group registry and sender. All methods are safe for
// concurrent use.
type Hub struct {
	// mu serializes the writers (Join, Leave, Close). Send never takes it.
	mu      sync.Mutex
	conn    *net.UDPConn
	members atomic.Pointer[membership]
	closed  atomic.Bool
	logf    func(format string, args ...any)

	// rc is the sending socket's raw handle, used by the vectorized
	// (sendmmsg) fan-out; vectorized reports whether that fast path is
	// compiled in and enabled. On platforms without it, or with it
	// disabled via NoSendmmsgEnv or SetVectorized(false), every write
	// goes through WriteToUDPAddrPort.
	rc         syscall.RawConn
	vectorized atomic.Bool

	// The GSO rung of the egress ladder: gsoOn routes batches through the
	// UDP_SEGMENT super-frame path (gso_linux.go); gsoCapable records the
	// creation-time capability probe, so the test hook SetGSO can re-arm
	// the path only where the kernel accepted it.
	gsoOn      atomic.Bool
	gsoCapable bool

	// The io_uring rung: when armed (EnableUring), batch destination
	// vectors from every egress shard are enqueued to one shared
	// submission ring whose submitter coalesces them into single
	// io_uring_enter calls — batching across shards, not just within one
	// flush. uring is nil until armed and after teardown.
	uringOn atomic.Bool
	uring   *uRing

	// The egress ledger. sent and sentBytes count datagrams and payload
	// bytes actually written; failed counts members a send could not
	// reach; batches counts SendBatch dispatches that reached at least
	// one destination, batchedBytes their bytes; syscalls counts kernel
	// send invocations (sendmmsg calls on the vectorized path, individual
	// datagram writes otherwise), so sent/syscalls is the batching
	// factor. Padded: the counters are bumped concurrently by every
	// egress shard, and unpadded neighbors would share cache lines.
	sent         metrics.PaddedCounter
	sentBytes    metrics.PaddedCounter
	failed       metrics.PaddedCounter
	batches      metrics.PaddedCounter
	batchedBytes metrics.PaddedCounter
	syscalls     metrics.PaddedCounter
	// repairSent counts the subset of sent that were repair re-sends
	// (storm- or NACK-triggered), so ledgers can tell repair traffic
	// from schedule traffic sharing the same batch path.
	repairSent metrics.PaddedCounter
	// The super-frame ledger. superframes counts GSO super-datagrams put
	// on the wire (each one syscall-slot carrying several wire frames the
	// kernel split into MTU-sized segments); gsoSegments the frames they
	// carried; gsoSyscalls the sendmmsg invocations the GSO path made, so
	// gsoSegments/gsoSyscalls is the segmentation factor; gsoFallbacks
	// how many times the GSO path was declined or abandoned (probe
	// failure, kill-switch, or a runtime EINVAL demotion).
	superframes  metrics.PaddedCounter
	gsoSegments  metrics.PaddedCounter
	gsoSyscalls  metrics.PaddedCounter
	gsoFallbacks metrics.PaddedCounter
	// The io_uring ledger. uringSubmits counts io_uring_enter calls;
	// uringSQEs the send SQEs they carried, so uringSQEs/uringSubmits is
	// the achieved SQE depth — cross-shard coalescing pushes it above
	// what any single shard's batch would reach.
	uringSubmits metrics.PaddedCounter
	uringSQEs    metrics.PaddedCounter

	// failing tracks consecutive send failures per (group, member) edge,
	// under mu; a member reaching EvictAfterFailures is removed from its
	// group. nfailing mirrors len(failing) so the Send success path can
	// skip the mutex (and stay allocation-free) while nothing is failing.
	failing  map[memberKey]int
	nfailing atomic.Int32
	evicted  metrics.PaddedCounter
}

var (
	_ Sender      = (*Hub)(nil)
	_ BatchSender = (*Hub)(nil)
)

// NewHub opens the hub's sending socket with default kernel buffers.
func NewHub() (*Hub, error) { return NewHubBuffered(0, 0) }

// NewHubBuffered opens the hub's sending socket and sizes its kernel
// buffers; see HubConfig for the semantics of the two sizes.
func NewHubBuffered(sndBuf, rcvBuf int) (*Hub, error) {
	return NewHubConfigured(HubConfig{SendBufBytes: sndBuf, RecvBufBytes: rcvBuf})
}

// HubConfig parameterizes NewHubConfigured.
type HubConfig struct {
	// SendBufBytes > 0 calls SetWriteBuffer on the sending socket (the
	// knob that matters — a batched egress engine can hand the kernel
	// bursts of dozens of datagrams per syscall, and a default-sized send
	// buffer drops the tail of a burst under load). Zero leaves the OS
	// default.
	SendBufBytes int
	// RecvBufBytes > 0 calls SetReadBuffer (only error/ICMP traffic lands
	// there; sized for symmetry). Zero leaves the OS default.
	RecvBufBytes int
	// Logf, when non-nil, receives the hub's diagnostic notices — the
	// single fall-back lines the fast-path probes (GSO, io_uring) emit
	// when a kernel capability is missing or kill-switched.
	Logf func(format string, args ...any)
}

// NewHubConfigured opens the hub's sending socket, sizes its kernel
// buffers, and probes the platform fast paths (sendmmsg, UDP GSO).
func NewHubConfigured(cfg HubConfig) (*Hub, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("mcast: opening sender socket: %w", err)
	}
	if cfg.SendBufBytes > 0 {
		if err := conn.SetWriteBuffer(cfg.SendBufBytes); err != nil {
			conn.Close()
			return nil, fmt.Errorf("mcast: sizing send buffer: %w", err)
		}
	}
	if cfg.RecvBufBytes > 0 {
		if err := conn.SetReadBuffer(cfg.RecvBufBytes); err != nil {
			conn.Close()
			return nil, fmt.Errorf("mcast: sizing receive buffer: %w", err)
		}
	}
	h := &Hub{conn: conn, logf: cfg.Logf}
	if h.logf == nil {
		h.logf = func(string, ...any) {}
	}
	m := make(membership)
	h.members.Store(&m)
	h.initVectorized()
	h.initGSO()
	return h, nil
}

// addrPort converts a UDP address to the netip form the lock-free send
// loop writes to, unmapping 4-in-6 so it matches the hub's IPv4 socket.
func addrPort(addr *net.UDPAddr) netip.AddrPort {
	ap := addr.AddrPort()
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// clone copies the snapshot, deep-copying only group g — the one the
// caller is about to edit; other groups share their (immutable) slices.
func (m membership) clone(g Group) membership {
	next := make(membership, len(m)+1)
	for k, v := range m {
		next[k] = v
	}
	next[g] = append([]netip.AddrPort(nil), m[g]...)
	return next
}

// Join subscribes addr to group g. Joining twice is a no-op.
func (h *Hub) Join(g Group, addr *net.UDPAddr) error {
	if addr == nil {
		return fmt.Errorf("mcast: join %v with nil address", g)
	}
	ap := addrPort(addr)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed.Load() {
		return fmt.Errorf("mcast: hub closed")
	}
	cur := *h.members.Load()
	for _, have := range cur[g] {
		if have == ap {
			return nil
		}
	}
	next := cur.clone(g)
	next[g] = append(next[g], ap)
	h.members.Store(&next)
	return nil
}

// Leave unsubscribes addr from group g. Leaving a group the address never
// joined is a no-op.
func (h *Hub) Leave(g Group, addr *net.UDPAddr) {
	if addr == nil {
		return
	}
	ap := addrPort(addr)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.removeLocked(g, ap)
	h.forgetLocked(memberKey{g, ap})
}

// removeLocked drops ap from group g in a fresh snapshot. Callers hold mu.
func (h *Hub) removeLocked(g Group, ap netip.AddrPort) {
	cur := *h.members.Load()
	idx := -1
	for i, have := range cur[g] {
		if have == ap {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	next := cur.clone(g)
	next[g] = append(next[g][:idx], next[g][idx+1:]...)
	if len(next[g]) == 0 {
		delete(next, g)
	}
	h.members.Store(&next)
}

// forgetLocked clears ap's failure record. Callers hold mu.
func (h *Hub) forgetLocked(k memberKey) {
	if _, ok := h.failing[k]; !ok {
		return
	}
	delete(h.failing, k)
	h.nfailing.Store(int32(len(h.failing)))
}

// noteFailure records one failed write to (g, ap) and evicts the member
// once it accumulates EvictAfterFailures consecutive failures.
func (h *Hub) noteFailure(g Group, ap netip.AddrPort) {
	k := memberKey{g, ap}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.failing == nil {
		h.failing = make(map[memberKey]int)
	}
	h.failing[k]++
	if h.failing[k] >= EvictAfterFailures {
		h.removeLocked(g, ap)
		delete(h.failing, k)
		h.evicted.Inc()
	}
	h.nfailing.Store(int32(len(h.failing)))
}

// noteSuccess resets ap's consecutive-failure count. Callers invoke it only
// when nfailing is non-zero, keeping the all-healthy Send path lock-free.
func (h *Hub) noteSuccess(g Group, ap netip.AddrPort) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.forgetLocked(memberKey{g, ap})
}

// Members returns the current subscriber count of g.
func (h *Hub) Members(g Group) int {
	return len((*h.members.Load())[g])
}

// Send delivers one datagram to every current member of g, returning how
// many receivers it was written to. A send to an empty group succeeds and
// reaches zero receivers — broadcast semantics, senders never block on
// membership.
//
// Send reads the membership snapshot without locking and allocates
// nothing on the success path. Delivery is best-effort: a member whose
// write fails is skipped, the rest of the group still receives the
// datagram, and the failures are aggregated into the returned error.
// When the vectorized fan-out is enabled the group's datagrams go to the
// kernel in sendmmsg batches; otherwise one write syscall per member.
func (h *Hub) Send(g Group, frame []byte) (int, error) {
	if h.closed.Load() {
		return 0, fmt.Errorf("mcast: hub closed")
	}
	if h.vectorized.Load() {
		return h.sendOneVec(g, frame)
	}
	members := (*h.members.Load())[g]
	n := 0
	nfail := 0
	var first error
	for _, ap := range members {
		h.syscalls.Inc()
		if _, err := h.conn.WriteToUDPAddrPort(frame, ap); err != nil {
			nfail++
			if first == nil {
				first = err
			}
			h.noteFailure(g, ap)
			continue
		}
		n++
		if h.nfailing.Load() != 0 {
			h.noteSuccess(g, ap)
		}
	}
	if n > 0 {
		h.sent.Add(int64(n))
		h.sentBytes.Add(int64(n) * int64(len(frame)))
	}
	if nfail > 0 {
		h.failed.Add(int64(nfail))
		return n, fmt.Errorf("mcast: %d of %d sends to %v failed: %w", nfail, len(members), g, first)
	}
	return n, nil
}

// TotalMembers returns the membership count across all groups.
func (h *Hub) TotalMembers() int {
	n := 0
	for _, m := range *h.members.Load() {
		n += len(m)
	}
	return n
}

// Sent returns the total datagrams written since creation.
func (h *Hub) Sent() int64 { return h.sent.Value() }

// SentBytes returns the total datagram bytes written since creation.
func (h *Hub) SentBytes() int64 { return h.sentBytes.Value() }

// SendFailures returns how many member writes have failed since creation;
// each failed member was skipped while the rest of its group was served.
func (h *Hub) SendFailures() int64 { return h.failed.Value() }

// Batches returns how many SendBatch dispatches reached at least one
// destination; BatchedBytes the payload bytes they carried.
func (h *Hub) Batches() int64      { return h.batches.Value() }
func (h *Hub) BatchedBytes() int64 { return h.batchedBytes.Value() }

// SendSyscalls returns how many kernel send invocations the hub has made:
// one per sendmmsg on the vectorized path, one per datagram otherwise.
// Sent()/SendSyscalls() is therefore the achieved batching factor.
func (h *Hub) SendSyscalls() int64 { return h.syscalls.Value() }

// Vectorized reports whether the sendmmsg fast path is active.
func (h *Hub) Vectorized() bool { return h.vectorized.Load() }

// GSO reports whether the UDP_SEGMENT super-frame path is active.
func (h *Hub) GSO() bool { return h.gsoOn.Load() }

// Superframes returns how many GSO super-datagrams have been put on the
// wire; GSOSegments the wire frames those superframes carried (each one
// an MTU-sized datagram after the kernel split); GSOSyscalls the
// sendmmsg invocations the GSO path made, so GSOSegments/GSOSyscalls is
// the achieved segmentation factor.
func (h *Hub) Superframes() int64 { return h.superframes.Value() }
func (h *Hub) GSOSegments() int64 { return h.gsoSegments.Value() }
func (h *Hub) GSOSyscalls() int64 { return h.gsoSyscalls.Value() }

// GSOFallbacks returns how many times the GSO path was declined or
// abandoned: the creation-time probe failing (old kernel), the
// SKYSCRAPER_NO_GSO kill-switch, or a runtime demotion after the kernel
// rejected a super-frame.
func (h *Hub) GSOFallbacks() int64 { return h.gsoFallbacks.Value() }

// UringActive reports whether the shared io_uring submission path is
// armed; UringSubmits counts its io_uring_enter invocations and
// UringSQEs the send SQEs they carried, so UringSQEs/UringSubmits is the
// achieved SQE depth (cross-shard coalescing raises it above any single
// shard's batch size).
func (h *Hub) UringActive() bool   { return h.uringOn.Load() }
func (h *Hub) UringSubmits() int64 { return h.uringSubmits.Value() }
func (h *Hub) UringSQEs() int64    { return h.uringSQEs.Value() }

// Evictions returns how many members have been removed after
// EvictAfterFailures consecutive send failures.
func (h *Hub) Evictions() int64 { return h.evicted.Value() }

// RepairDatagrams returns how many of the sent datagrams were repair
// re-sends dispatched via SendRepairBatch.
func (h *Hub) RepairDatagrams() int64 { return h.repairSent.Value() }

// Close shuts the sending socket; subsequent Joins and Sends fail. When
// the io_uring path is armed its submitter is stopped first — completing
// or failing every in-flight batch — so no SQE can reference the socket
// after it closes.
func (h *Hub) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed.Swap(true) {
		return nil
	}
	h.closeUring()
	return h.conn.Close()
}

// Receiver is a convenience wrapper for a client-side UDP socket with a
// large receive buffer (broadcast bursts must not drop on loopback).
type Receiver struct {
	Conn *net.UDPConn
}

// DefaultRecvBufBytes is the receiver's kernel buffer size when the
// caller does not choose one: broadcast traffic is bursty — with batched
// egress, deliberately so — and 4 MiB absorbs a burst while the client
// goroutine is scheduled out.
const DefaultRecvBufBytes = 4 << 20

// NewReceiver opens a loopback UDP socket on an ephemeral port with the
// default receive buffer.
func NewReceiver() (*Receiver, error) { return NewReceiverSized(0) }

// NewReceiverSized is NewReceiver with an explicit kernel receive-buffer
// size in bytes; zero or negative selects DefaultRecvBufBytes.
func NewReceiverSized(rcvBuf int) (*Receiver, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("mcast: opening receiver socket: %w", err)
	}
	if rcvBuf <= 0 {
		rcvBuf = DefaultRecvBufBytes
	}
	if err := conn.SetReadBuffer(rcvBuf); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mcast: sizing receive buffer: %w", err)
	}
	return &Receiver{Conn: conn}, nil
}

// Addr returns the receiver's UDP address.
func (r *Receiver) Addr() *net.UDPAddr { return r.Conn.LocalAddr().(*net.UDPAddr) }

// Close closes the socket.
func (r *Receiver) Close() error { return r.Conn.Close() }
