// Package mcast provides the multicast substrate for the live broadcast
// demo. The paper assumes "the multicast facility of modern communication
// networks"; on a single machine we substitute a hub that fans each
// group send out to every joined receiver over loopback UDP — semantically
// a multicast group (senders are unaware of membership; receivers join and
// leave at will), physically unicast datagrams, which preserves exactly the
// delivery behavior the broadcasting schemes depend on.
package mcast

import (
	"fmt"
	"net"
	"sync"
)

// Group identifies one logical broadcast channel: a (video, channel) pair.
type Group struct {
	Video   int
	Channel int
}

// String implements fmt.Stringer.
func (g Group) String() string { return fmt.Sprintf("video%d/ch%d", g.Video, g.Channel) }

// Sender is the hub's datagram fan-out, factored out so a fault-injection
// layer (internal/faults) can interpose between the channel pacers and the
// wire without the pacers knowing.
type Sender interface {
	// Send delivers one datagram to every current member of g, returning
	// how many receivers it was written to.
	Send(g Group, frame []byte) (int, error)
}

// Hub is the group registry and sender. All methods are safe for
// concurrent use.
type Hub struct {
	mu     sync.Mutex
	conn   *net.UDPConn
	groups map[Group]map[string]*net.UDPAddr
	closed bool
	// sent counts datagrams actually written, for tests and stats.
	sent int64
}

var _ Sender = (*Hub)(nil)

// NewHub opens the hub's sending socket.
func NewHub() (*Hub, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("mcast: opening sender socket: %w", err)
	}
	return &Hub{conn: conn, groups: make(map[Group]map[string]*net.UDPAddr)}, nil
}

// Join subscribes addr to group g. Joining twice is a no-op.
func (h *Hub) Join(g Group, addr *net.UDPAddr) error {
	if addr == nil {
		return fmt.Errorf("mcast: join %v with nil address", g)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return fmt.Errorf("mcast: hub closed")
	}
	m := h.groups[g]
	if m == nil {
		m = make(map[string]*net.UDPAddr)
		h.groups[g] = m
	}
	m[addr.String()] = addr
	return nil
}

// Leave unsubscribes addr from group g. Leaving a group the address never
// joined is a no-op.
func (h *Hub) Leave(g Group, addr *net.UDPAddr) {
	if addr == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if m := h.groups[g]; m != nil {
		delete(m, addr.String())
		if len(m) == 0 {
			delete(h.groups, g)
		}
	}
}

// Members returns the current subscriber count of g.
func (h *Hub) Members(g Group) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.groups[g])
}

// Send delivers one datagram to every current member of g, returning how
// many receivers it was written to. A send to an empty group succeeds and
// reaches zero receivers — broadcast semantics, senders never block on
// membership.
func (h *Hub) Send(g Group, frame []byte) (int, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return 0, fmt.Errorf("mcast: hub closed")
	}
	members := make([]*net.UDPAddr, 0, len(h.groups[g]))
	for _, a := range h.groups[g] {
		members = append(members, a)
	}
	conn := h.conn
	h.mu.Unlock()

	n := 0
	for _, a := range members {
		if _, err := conn.WriteToUDP(frame, a); err != nil {
			return n, fmt.Errorf("mcast: sending to %v: %w", a, err)
		}
		n++
	}
	h.mu.Lock()
	h.sent += int64(n)
	h.mu.Unlock()
	return n, nil
}

// TotalMembers returns the membership count across all groups.
func (h *Hub) TotalMembers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, m := range h.groups {
		n += len(m)
	}
	return n
}

// Sent returns the total datagrams written since creation.
func (h *Hub) Sent() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sent
}

// Close shuts the sending socket; subsequent Joins and Sends fail.
func (h *Hub) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	return h.conn.Close()
}

// Receiver is a convenience wrapper for a client-side UDP socket with a
// large receive buffer (broadcast bursts must not drop on loopback).
type Receiver struct {
	Conn *net.UDPConn
}

// NewReceiver opens a loopback UDP socket on an ephemeral port.
func NewReceiver() (*Receiver, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("mcast: opening receiver socket: %w", err)
	}
	// Broadcast traffic is bursty; a generous kernel buffer prevents
	// drops while the client goroutine is scheduled out.
	if err := conn.SetReadBuffer(4 << 20); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mcast: sizing receive buffer: %w", err)
	}
	return &Receiver{Conn: conn}, nil
}

// Addr returns the receiver's UDP address.
func (r *Receiver) Addr() *net.UDPAddr { return r.Conn.LocalAddr().(*net.UDPAddr) }

// Close closes the socket.
func (r *Receiver) Close() error { return r.Conn.Close() }
