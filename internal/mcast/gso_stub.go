//go:build !linux || (!amd64 && !arm64)

// Portable stubs for the UDP GSO super-frame path. On platforms without
// the linux fast path the hub never arms gsoOn, so sendBatchGSO is
// unreachable; the stubs exist so the shared batch code compiles
// everywhere and behaves identically through the generic writer.
package mcast

// gsoCompiled reports at compile time whether this build contains the
// GSO fast path; tests use it to decide what the kill-switch can prove.
const gsoCompiled = false

// gsoBuf has no state on platforms without the super-frame path.
type gsoBuf struct{}

// initGSO is a no-op: there is no super-frame path to arm, and the
// SKYSCRAPER_NO_GSO kill-switch has nothing to switch off.
func (h *Hub) initGSO() {}

// SetGSO reports false: the super-frame path cannot be enabled here.
func (h *Hub) SetGSO(on bool) bool { return false }

// sendBatchGSO is unreachable on this platform — gsoOn is never set.
func (h *Hub) sendBatchGSO([]BatchEntry) (int, error) {
	panic("mcast: GSO path invoked without platform support")
}
