// Vectorized fan-out: the batch half of the hub's egress API.
//
// The per-chunk cost model of the paper — server load proportional to
// channels, not viewers — breaks down if every chunk still costs one
// write syscall per group member. SendBatch restores it: the caller hands
// over every chunk due in one scheduling tick, the hub expands them
// against the membership snapshot into a flat destination vector, and the
// platform layer puts that vector on the wire in batches of up to
// sendmmsgBatch datagrams per syscall (hub_linux.go) or one write per
// datagram where sendmmsg is unavailable or disabled (hub_generic.go,
// behavior-identical). Destination vectors and the syscall arrays behind
// them are pooled, so the steady-state batch path allocates nothing.
package mcast

import (
	"fmt"
	"net/netip"
	"sync"
)

// NoSendmmsgEnv, when set to any non-empty value before the hub is
// created, disables the sendmmsg fast path so every datagram goes through
// the portable WriteToUDPAddrPort fallback. CI sets it to exercise the
// fallback on linux; it has no effect on platforms without the fast path.
const NoSendmmsgEnv = "SKYSCRAPER_NO_SENDMMSG"

// NoGSOEnv, when set to any non-empty value before the hub is created,
// disables the UDP_SEGMENT super-frame path so batches go out as
// individual datagrams through sendmmsg (or the portable fallback). The
// decline is logged once and counted in GSOFallbacks. It has no effect
// on platforms without the fast path.
const NoGSOEnv = "SKYSCRAPER_NO_GSO"

// NoRecvmmsgEnv, when set to any non-empty value before a shared
// receiver is created, disables the recvmmsg ingress rung so every
// datagram is read with its own ReadFromUDPAddrPort — the ingress mirror
// of NoSendmmsgEnv. It has no effect on platforms without the fast path.
const NoRecvmmsgEnv = "SKYSCRAPER_NO_RECVMMSG"

// NoGROEnv, when set to any non-empty value before a shared receiver is
// created, disables the UDP_GRO coalesced-receive rung so super-frames
// arrive pre-segmented by the kernel — the ingress mirror of NoGSOEnv.
// The decline is logged once and counted in GROFallbacks. It has no
// effect on platforms without the fast path.
const NoGROEnv = "SKYSCRAPER_NO_GRO"

// BatchEntry is one chunk to broadcast: the frame and the group whose
// members should receive it.
type BatchEntry struct {
	Group Group
	Frame []byte
}

// BatchSender is the batched fan-out a tick-driven egress engine wants:
// all chunks due in one tick delivered with one call. The Hub implements
// it; interposing senders that must decide per chunk (fault injectors)
// deliberately do not, so callers fall back to per-chunk Send through
// them.
type BatchSender interface {
	// SendBatch delivers every entry's frame to every current member of
	// its group, returning the number of datagrams written. Delivery is
	// best-effort per destination, like Send.
	SendBatch(entries []BatchEntry) (int, error)
}

// dest is one expanded (datagram, destination) pair of a batch.
type dest struct {
	ap     netip.AddrPort
	frame  []byte
	group  Group
	failed bool
}

// batchBuf is the pooled working state of one SendBatch call: the
// expanded destination vector plus the platform's reusable syscall
// arrays (per-datagram sendmmsg staging in vec, super-frame staging in
// gso).
type batchBuf struct {
	ds  []dest
	vec *vecBuf
	gso *gsoBuf
}

var batchPool = sync.Pool{New: func() any { return new(batchBuf) }}

// SendRepairBatch delivers repair re-sends through the same vectorized
// batch path as scheduled egress — repair traffic shares the sendmmsg and
// batching ledgers instead of bypassing them — while additionally
// counting the datagrams in the repair ledger (RepairDatagrams) so
// operators can tell the two flows apart.
func (h *Hub) SendRepairBatch(entries []BatchEntry) (int, error) {
	n, err := h.SendBatch(entries)
	if n > 0 {
		h.repairSent.Add(int64(n))
	}
	return n, err
}

// SendBatch delivers every entry's frame to every current member of its
// group — the whole tick's egress in one call — returning how many
// datagrams were written. Entries whose groups are empty cost nothing;
// a batch that expands to zero destinations succeeds trivially.
//
// Like Send, SendBatch reads the membership snapshot without locking,
// allocates nothing steady-state, and is best-effort per destination:
// a failing member is skipped and counted (and eventually evicted), the
// rest of the batch is still delivered, and failures aggregate into the
// returned error.
func (h *Hub) SendBatch(entries []BatchEntry) (int, error) {
	if h.closed.Load() {
		return 0, fmt.Errorf("mcast: hub closed")
	}
	// The super-frame path does its own run-major expansion so same-group
	// adjacent frames share one syscall slot; it is skipped under the
	// io_uring engine, whose cross-shard ring carries per-datagram SQEs.
	if h.gsoOn.Load() && h.vectorized.Load() && !h.uringOn.Load() {
		return h.sendBatchGSO(entries)
	}
	m := *h.members.Load()
	bb := batchPool.Get().(*batchBuf)
	ds := bb.ds[:0]
	for ei := range entries {
		g := entries[ei].Group
		for _, ap := range m[g] {
			ds = append(ds, dest{ap: ap, frame: entries[ei].Frame, group: g})
		}
	}
	bb.ds = ds
	if len(ds) == 0 {
		batchPool.Put(bb)
		return 0, nil
	}
	h.batches.Inc()

	var first error
	switch {
	case h.uringOn.Load():
		var ok bool
		if first, ok = h.writeDestsUring(ds); ok {
			break
		}
		// The ring went down (teardown or submitter panic) before this
		// batch was taken; retry through the direct path.
		fallthrough
	case h.vectorized.Load():
		first = h.writeDestsVec(bb)
	default:
		first = h.writeDestsGeneric(ds)
	}

	n, nfail := h.settleDests(ds, first)
	total := len(ds)
	batchPool.Put(bb)
	if nfail > 0 {
		return n, fmt.Errorf("mcast: %d of %d batched sends failed: %w", nfail, total, first)
	}
	return n, nil
}

// settleDests is the single accounting tail every batched dispatch path
// shares (SendBatch, sendOneVec, and the GSO expansion): per-destination
// failure/eviction notes plus the sent/sentBytes/batchedBytes/failed
// ledger counters. Keeping it in one place is what keeps the /status
// batching-factor honest — single-chunk vectorized sends used to skip
// the batch counters and skew it.
func (h *Hub) settleDests(ds []dest, first error) (n, nfail int) {
	var bytes int64
	for i := range ds {
		d := &ds[i]
		if d.failed {
			nfail++
			h.noteFailure(d.group, d.ap)
			continue
		}
		n++
		bytes += int64(len(d.frame))
		if h.nfailing.Load() != 0 {
			h.noteSuccess(d.group, d.ap)
		}
	}
	if n > 0 {
		h.sent.Add(int64(n))
		h.sentBytes.Add(bytes)
		h.batchedBytes.Add(bytes)
	}
	if nfail > 0 {
		h.failed.Add(int64(nfail))
	}
	return n, nfail
}

// sendOneVec is Send's vectorized body: one frame to one group's members
// through the same pooled machinery and the same ledger accounting as
// SendBatch, so a lone chunk to a large group still costs
// ceil(members/sendmmsgBatch) syscalls and still shows up in the batch
// counters (repair singles used to skip them, skewing the batching
// factor in /status).
func (h *Hub) sendOneVec(g Group, frame []byte) (int, error) {
	members := (*h.members.Load())[g]
	if len(members) == 0 {
		return 0, nil
	}
	bb := batchPool.Get().(*batchBuf)
	ds := bb.ds[:0]
	for _, ap := range members {
		ds = append(ds, dest{ap: ap, frame: frame, group: g})
	}
	bb.ds = ds
	h.batches.Inc()
	first := h.writeDestsVec(bb)

	n, nfail := h.settleDests(ds, first)
	batchPool.Put(bb)
	if nfail > 0 {
		return n, fmt.Errorf("mcast: %d of %d sends to %v failed: %w", nfail, len(members), g, first)
	}
	return n, nil
}

// writeDestsGeneric is the portable destination-vector writer: one
// WriteToUDPAddrPort per datagram, marking failed destinations in place
// and returning the first error. It is the whole story on platforms
// without sendmmsg and the explicit fallback everywhere else, and its
// delivery semantics define what the vectorized path must match.
func (h *Hub) writeDestsGeneric(ds []dest) error {
	var first error
	for i := range ds {
		h.syscalls.Inc()
		if _, err := h.conn.WriteToUDPAddrPort(ds[i].frame, ds[i].ap); err != nil {
			ds[i].failed = true
			if first == nil {
				first = err
			}
		}
	}
	return first
}
