package series

import "fmt"

// A Group is a transmission group (Section 3.3): a maximal run of
// consecutive data fragments having the same relative size. Clients receive
// fragments group-at-a-time, alternating between the Odd Loader and the
// Even Loader.
type Group struct {
	// Index is the 1-based position of the group in the video.
	Index int
	// First is the 1-based index of the group's first fragment (and of
	// the logical channel carrying it).
	First int
	// Count is the number of fragments in the group.
	Count int
	// Size is the relative size (in D1 units) of each fragment in the
	// group.
	Size int64
	// StartUnit is the playback offset of the group's first fragment
	// from the beginning of the video, in D1 units.
	StartUnit int64
}

// Odd reports whether this is an odd group, i.e. whether the fragment size
// is odd. The paper's loaders split work by this parity: "A transmission
// group (A, A, ..., A) is called an odd group if A is an odd number". Odd
// and even groups interleave in the skyscraper series, which is what makes
// two loaders sufficient.
func (g Group) Odd() bool { return g.Size%2 == 1 }

// EndUnit returns the playback offset just past the group's last fragment,
// in D1 units.
func (g Group) EndUnit() int64 { return g.StartUnit + int64(g.Count)*g.Size }

// String renders the group the way the paper writes it, e.g. "(5,5)".
func (g Group) String() string {
	s := "("
	for i := 0; i < g.Count; i++ {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", g.Size)
	}
	return s + ")"
}

// Groups partitions a capped size vector (as returned by Values) into
// transmission groups. It panics on an empty or non-positive size vector.
func Groups(sizes []int64) []Group {
	if len(sizes) == 0 {
		panic("series: Groups: empty size vector")
	}
	var out []Group
	var offset int64
	for i := 0; i < len(sizes); {
		if sizes[i] <= 0 {
			panic(fmt.Sprintf("series: Groups: size[%d] = %d must be positive", i, sizes[i]))
		}
		j := i
		for j < len(sizes) && sizes[j] == sizes[i] {
			j++
		}
		g := Group{
			Index:     len(out) + 1,
			First:     i + 1,
			Count:     j - i,
			Size:      sizes[i],
			StartUnit: offset,
		}
		out = append(out, g)
		offset = g.EndUnit()
		i = j
	}
	return out
}

// CheckAlternation verifies the structural property the two-loader client
// design depends on: consecutive groups alternate between odd and even
// fragment sizes. It returns an error naming the first violation, or nil.
//
// The skyscraper series has this property by construction (Section 3.3:
// "the odd groups and the even groups interleave in the broadcast series");
// arbitrary user-supplied series may not, in which case the client would
// need more than two loaders.
func CheckAlternation(groups []Group) error {
	for i := 1; i < len(groups); i++ {
		if groups[i].Odd() == groups[i-1].Odd() {
			return fmt.Errorf("series: groups %d %v and %d %v have the same parity; two loaders are insufficient",
				groups[i-1].Index, groups[i-1], groups[i].Index, groups[i])
		}
	}
	return nil
}
