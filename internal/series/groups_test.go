package series

import (
	"testing"
	"testing/quick"
)

func TestGroupsUncapped(t *testing.T) {
	g := Groups(Values(Skyscraper{}, 9, 0))
	// Paper Section 3.3: "the first segment forms the first group; the
	// second and third segments form the second group (i.e., 2,2); the
	// fourth and fifth form the third group (i.e., 5,5); and so forth."
	want := []struct {
		first, count int
		size         int64
		start        int64
	}{
		{1, 1, 1, 0},
		{2, 2, 2, 1},
		{4, 2, 5, 5},
		{6, 2, 12, 15},
		{8, 2, 25, 39},
	}
	if len(g) != len(want) {
		t.Fatalf("got %d groups %v, want %d", len(g), g, len(want))
	}
	for i, w := range want {
		got := g[i]
		if got.First != w.first || got.Count != w.count || got.Size != w.size || got.StartUnit != w.start {
			t.Errorf("group %d = %+v, want %+v", i+1, got, w)
		}
		if got.Index != i+1 {
			t.Errorf("group %d has Index %d", i+1, got.Index)
		}
	}
}

func TestGroupsCapped(t *testing.T) {
	// W = 12, K = 10: sizes 1,2,2,5,5,12,12,12,12,12 - the cap merges the
	// tail into one five-fragment group.
	g := Groups(Values(Skyscraper{}, 10, 12))
	last := g[len(g)-1]
	if last.Count != 5 || last.Size != 12 || last.First != 6 {
		t.Errorf("capped tail group = %+v, want 5 fragments of size 12 starting at channel 6", last)
	}
	if last.EndUnit() != Sum(Skyscraper{}, 10, 12) {
		t.Errorf("tail EndUnit %d != total %d", last.EndUnit(), Sum(Skyscraper{}, 10, 12))
	}
}

func TestGroupParity(t *testing.T) {
	g := Groups(Values(Skyscraper{}, 11, 0))
	wantOdd := []bool{true, false, true, false, true, false} // 1,2,5,12,25,52
	for i, w := range wantOdd {
		if g[i].Odd() != w {
			t.Errorf("group %d (%v) Odd() = %v, want %v", i+1, g[i], g[i].Odd(), w)
		}
	}
	if err := CheckAlternation(g); err != nil {
		t.Errorf("uncapped skyscraper groups failed alternation: %v", err)
	}
}

func TestGroupAlternationHoldsForAllWidths(t *testing.T) {
	// The interleaving property must survive capping at any width that is
	// itself an element of the series (the widths the scheme uses).
	for _, n := range []int{1, 2, 4, 6, 8, 10, 14, 20, 26, 30} {
		w := Skyscraper{}.At(n)
		for k := 1; k <= 45; k++ {
			if err := CheckAlternation(Groups(Values(Skyscraper{}, k, w))); err != nil {
				t.Fatalf("K=%d W=%d: %v", k, w, err)
			}
		}
	}
}

func TestCheckAlternationDetectsViolation(t *testing.T) {
	// 1,3 are both odd: two consecutive odd groups.
	if err := CheckAlternation(Groups([]int64{1, 3})); err == nil {
		t.Error("CheckAlternation accepted consecutive odd groups")
	}
	// Doubling series 1,2,4: groups (1),(2),(4) - 2 and 4 both even.
	if err := CheckAlternation(Groups(Values(Doubling{}, 3, 0))); err == nil {
		t.Error("CheckAlternation accepted doubling series")
	}
}

func TestGroupsTile(t *testing.T) {
	f := func(k uint8, wsel uint8) bool {
		kk := int(k%40) + 1
		w := Skyscraper{}.At(int(wsel%20) + 1)
		sizes := Values(Skyscraper{}, kk, w)
		groups := Groups(sizes)
		// Groups must tile the fragment list exactly.
		next := 1
		var offset int64
		for _, g := range groups {
			if g.First != next || g.StartUnit != offset {
				return false
			}
			next += g.Count
			offset = g.EndUnit()
		}
		return next == kk+1 && offset == Sum(Skyscraper{}, kk, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGroupString(t *testing.T) {
	g := Group{Count: 2, Size: 5}
	if g.String() != "(5,5)" {
		t.Errorf("String() = %q, want (5,5)", g.String())
	}
}

func TestGroupsPanics(t *testing.T) {
	for _, bad := range [][]int64{nil, {}, {1, 0}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Groups(%v) did not panic", bad)
				}
			}()
			Groups(bad)
		}()
	}
}
