// Package series implements broadcast series: the integer sequences that
// determine the relative sizes of a video's data fragments under periodic
// broadcast schemes.
//
// Skyscraper Broadcasting (Hua & Sheu, SIGCOMM '97, Section 3.2) fragments
// each video according to the recursively defined series
//
//	1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52, 105, 105, ...
//
// optionally capped at a width W ("the width of the skyscraper"). The paper
// notes (Section 6) that SB is a generalized technique characterized by a
// broadcast series and a width, so this package exposes the series as an
// interface with several implementations: the paper's skyscraper series, the
// geometric series used by the pyramid-based schemes, and the constant
// series of plain staggered broadcasting.
package series

import (
	"fmt"
	"math"
)

// A Series yields the relative size of the n-th data fragment (1-based).
// Values are positive and non-decreasing in n. Implementations must be
// usable from multiple goroutines after construction.
type Series interface {
	// At returns the n-th element of the series, n >= 1. It panics if
	// n < 1. Values saturate at Max rather than overflowing.
	At(n int) int64
	// Name identifies the series in reports and traces.
	Name() string
}

// Max is the saturation bound for series values. The skyscraper series
// roughly doubles every other element, so int64 would overflow near n = 120;
// every practical deployment caps fragments at a width W far below this.
const Max = int64(1) << 62

// Skyscraper is the broadcast series of Section 3.2:
//
//	f(1) = 1, f(2) = f(3) = 2, and for n > 3
//	f(n) = 2*f(n-1) + 1  when n mod 4 == 0
//	f(n) = f(n-1)        when n mod 4 == 1
//	f(n) = 2*f(n-1) + 2  when n mod 4 == 2
//	f(n) = f(n-1)        when n mod 4 == 3
//
// producing 1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52, ... Every element after
// the first appears exactly twice in a row, which is what lets a client
// receive the stream with only two loaders (Section 3.3).
type Skyscraper struct{}

// At returns f(n).
func (Skyscraper) At(n int) int64 {
	if n < 1 {
		panic(fmt.Sprintf("series: Skyscraper.At(%d): n must be >= 1", n))
	}
	switch n {
	case 1:
		return 1
	case 2, 3:
		return 2
	}
	f := int64(2) // f(3)
	for i := 4; i <= n; i++ {
		switch i % 4 {
		case 0:
			f = sat2x(f, 1)
		case 2:
			f = sat2x(f, 2)
			// cases 1 and 3 repeat the previous element.
		}
	}
	return f
}

// Name implements Series.
func (Skyscraper) Name() string { return "skyscraper" }

// sat2x returns 2*f+c, saturating at Max.
func sat2x(f, c int64) int64 {
	if f >= (Max-c)/2 {
		return Max
	}
	return 2*f + c
}

// Geometric is the fragmentation series of the pyramid-based schemes
// (Section 2): element n is alpha^(n-1) for a factor alpha > 1. Because the
// skyscraper client machinery requires integer relative sizes, Geometric is
// provided for the analytic models and for fragment-size computation, where
// real-valued sizes are acceptable; At rounds to the nearest integer unit
// and is mainly useful for comparative examples.
type Geometric struct {
	// Alpha is the geometric factor, > 1.
	Alpha float64
}

// At returns round(Alpha^(n-1)), saturating at Max.
func (g Geometric) At(n int) int64 {
	if n < 1 {
		panic(fmt.Sprintf("series: Geometric.At(%d): n must be >= 1", n))
	}
	v := math.Pow(g.Alpha, float64(n-1))
	if v >= float64(Max) {
		return Max
	}
	if v < 1 {
		return 1
	}
	return int64(math.Round(v))
}

// Name implements Series.
func (g Geometric) Name() string { return fmt.Sprintf("geometric(%g)", g.Alpha) }

// Constant is the degenerate series 1, 1, 1, ... of plain staggered
// broadcasting: all fragments equal, so K channels reduce the access latency
// only linearly (Section 1's critique of the earliest periodic broadcast
// schemes).
type Constant struct{}

// At returns 1.
func (Constant) At(n int) int64 {
	if n < 1 {
		panic(fmt.Sprintf("series: Constant.At(%d): n must be >= 1", n))
	}
	return 1
}

// Name implements Series.
func (Constant) Name() string { return "constant" }

// Fibonacci-style doubling series 1, 2, 4, 8, ... is the W=infinity limit of
// several follow-on protocols (e.g. Fast Broadcasting); it is included as an
// ablation point for the series-choice study.
type Doubling struct{}

// At returns 2^(n-1), saturating at Max.
func (Doubling) At(n int) int64 {
	if n < 1 {
		panic(fmt.Sprintf("series: Doubling.At(%d): n must be >= 1", n))
	}
	if n > 62 {
		return Max
	}
	return int64(1) << uint(n-1)
}

// Name implements Series.
func (Doubling) Name() string { return "doubling" }

// Values materializes the first k elements of s, capped at width w
// (Section 3.2: "we use W to restrict the segments from becoming too
// large"). A width of 0 or less means no cap (the paper's W = infinity
// curves). The returned slice has length k.
func Values(s Series, k int, w int64) []int64 {
	if k < 0 {
		panic(fmt.Sprintf("series: Values: k = %d must be >= 0", k))
	}
	out := make([]int64, k)
	for i := 1; i <= k; i++ {
		v := s.At(i)
		if w > 0 && v > w {
			v = w
		}
		out[i-1] = v
	}
	return out
}

// Sum returns the total of the first k elements of s capped at width w,
// i.e. the denominator of the access-latency formula
//
//	D1 = D / sum_{i=1..K} min(f(i), W).
func Sum(s Series, k int, w int64) int64 {
	var total int64
	for i := 1; i <= k; i++ {
		v := s.At(i)
		if w > 0 && v > w {
			v = w
		}
		if total > Max-v {
			return Max
		}
		total += v
	}
	return total
}

// WidthForElement returns the value of the skyscraper series at position n;
// the paper's Section 5 studies W = 2, 52, 1705 and 54612, "the values of
// the 2-nd, 10-th, 20-th and 30-th elements of the broadcast series". It is
// a convenience wrapper over Skyscraper.At.
func WidthForElement(n int) int64 { return Skyscraper{}.At(n) }

// WidthForLatency returns the smallest width W such that the access latency
// D / Sum(s, k, W) does not exceed target latency (both in minutes), or 0
// (meaning uncapped) if even the uncapped series cannot reach the target.
// This inverts the paper's formula "which can be used to determine W given
// the desired access latency" (Section 3.2).
//
// The returned width is always an element of the series: capping at an
// arbitrary value could leave the tail group with the same parity as its
// predecessor, breaking the two-loader property (the paper's Section 5
// likewise studies only widths that are series elements). Rounding up to
// the next element only improves the latency.
func WidthForLatency(s Series, k int, lengthMin, targetMin float64) int64 {
	if targetMin <= 0 || k < 1 {
		return 0
	}
	need := int64(math.Ceil(lengthMin / targetMin))
	if Sum(s, k, 0) < need {
		return 0
	}
	// The sum is monotone in W, so binary search on W in [1, s.At(k)].
	lo, hi := int64(1), s.At(k)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if Sum(s, k, mid) >= need {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Round up to the nearest series element.
	for n := 1; n <= k; n++ {
		if v := s.At(n); v >= lo {
			return v
		}
	}
	return s.At(k)
}
