package series

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSkyscraperPrefix checks the materialized series against the values
// printed in Section 3.2 of the paper.
func TestSkyscraperPrefix(t *testing.T) {
	want := []int64{1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52}
	s := Skyscraper{}
	for i, w := range want {
		if got := s.At(i + 1); got != w {
			t.Errorf("f(%d) = %d, want %d", i+1, got, w)
		}
	}
}

// TestSkyscraperStudyWidths checks the W values used in the paper's
// performance study: "2, 52, 1705, and 54612 ... the values of the 2-nd,
// 10-th, 20-th and 30-th elements of the broadcast series".
func TestSkyscraperStudyWidths(t *testing.T) {
	cases := map[int]int64{2: 2, 10: 52, 20: 1705, 30: 54612}
	for n, want := range cases {
		if got := WidthForElement(n); got != want {
			t.Errorf("element %d = %d, want %d", n, got, want)
		}
	}
}

func TestSkyscraperRecurrence(t *testing.T) {
	s := Skyscraper{}
	prev := s.At(3)
	for n := 4; n <= 60; n++ {
		got := s.At(n)
		var want int64
		switch n % 4 {
		case 0:
			want = 2*prev + 1
		case 1, 3:
			want = prev
		case 2:
			want = 2*prev + 2
		}
		if got != want {
			t.Fatalf("f(%d) = %d, want %d (prev %d)", n, got, want, prev)
		}
		prev = got
	}
}

func TestSkyscraperPairs(t *testing.T) {
	// Every element after the first appears exactly twice in a row; this
	// is what makes a group at most two fragments (before capping).
	s := Skyscraper{}
	for n := 2; n < 50; n += 2 {
		if s.At(n) != s.At(n+1) {
			t.Errorf("f(%d) = %d != f(%d) = %d, want equal pair", n, s.At(n), n+1, s.At(n+1))
		}
		if n > 2 && s.At(n) <= s.At(n-1) {
			t.Errorf("f(%d) = %d not greater than f(%d) = %d", n, s.At(n), n-1, s.At(n-1))
		}
	}
}

func TestSkyscraperSaturates(t *testing.T) {
	s := Skyscraper{}
	if got := s.At(500); got != Max {
		t.Errorf("f(500) = %d, want saturation at %d", got, Max)
	}
	// Saturation must preserve monotonicity.
	if s.At(499) > s.At(500) {
		t.Error("series not monotone at saturation point")
	}
}

func TestSeriesPanicsBelowOne(t *testing.T) {
	for _, s := range []Series{Skyscraper{}, Constant{}, Doubling{}, Geometric{Alpha: 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s.At(0) did not panic", s.Name())
				}
			}()
			s.At(0)
		}()
	}
}

func TestValuesCapping(t *testing.T) {
	got := Values(Skyscraper{}, 8, 5)
	want := []int64{1, 2, 2, 5, 5, 5, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values(k=8, w=5) = %v, want %v", got, want)
		}
	}
	// w <= 0 means uncapped.
	unc := Values(Skyscraper{}, 8, 0)
	if unc[7] != 25 {
		t.Errorf("uncapped Values[7] = %d, want 25", unc[7])
	}
}

func TestSumMatchesValues(t *testing.T) {
	f := func(k uint8, w uint16) bool {
		kk := int(k%40) + 1
		ww := int64(w%100) + 1
		var total int64
		for _, v := range Values(Skyscraper{}, kk, ww) {
			total += v
		}
		return total == Sum(Skyscraper{}, kk, ww)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSumPaperExamples checks denominators that back numbers quoted in the
// paper's prose: with B = 320 (K = 21) and W = 2 the access latency is about
// 2.93 minutes and the buffer is 33 MByte; with B = 600 (K = 40) and W = 52
// the latency is about 0.1 minutes.
func TestSumPaperExamples(t *testing.T) {
	if got := Sum(Skyscraper{}, 21, 2); got != 41 {
		t.Errorf("Sum(K=21, W=2) = %d, want 41", got)
	}
	if got := Sum(Skyscraper{}, 40, 52); got != 1701 {
		t.Errorf("Sum(K=40, W=52) = %d, want 1701", got)
	}
	d1 := 120.0 / 41
	if math.Abs(d1-2.9268) > 1e-3 {
		t.Errorf("D1(K=21, W=2) = %v, want about 2.93 minutes", d1)
	}
}

func TestGeometric(t *testing.T) {
	g := Geometric{Alpha: 2.5}
	if g.At(1) != 1 {
		t.Errorf("geometric At(1) = %d, want 1", g.At(1))
	}
	if g.At(3) != 6 { // 2.5^2 = 6.25 rounds to 6
		t.Errorf("geometric At(3) = %d, want 6", g.At(3))
	}
	if g.At(400) != Max {
		t.Errorf("geometric At(400) = %d, want saturation", g.At(400))
	}
}

func TestDoubling(t *testing.T) {
	d := Doubling{}
	for n := 1; n <= 20; n++ {
		if got, want := d.At(n), int64(1)<<uint(n-1); got != want {
			t.Fatalf("doubling At(%d) = %d, want %d", n, got, want)
		}
	}
	if d.At(200) != Max {
		t.Error("doubling does not saturate")
	}
}

func TestWidthForLatency(t *testing.T) {
	// Paper Section 5.4: with B > 200 Mbit/s (K >= 13), W = 52 offers an
	// access latency of approximately 0.1 minutes for D = 120. Check that
	// inverting a 0.3-minute target at K = 21 yields a width no larger
	// than 52 and that the resulting latency meets the target.
	const k, d = 21, 120.0
	w := WidthForLatency(Skyscraper{}, k, d, 0.3)
	if w == 0 {
		t.Fatal("WidthForLatency returned infeasible for a feasible target")
	}
	got := d / float64(Sum(Skyscraper{}, k, w))
	if got > 0.3 {
		t.Errorf("latency with W=%d is %v, want <= 0.3", w, got)
	}
	// The result must be a series element (arbitrary caps can break the
	// two-loader parity property).
	isElement := false
	prevElement := int64(0)
	for n := 1; n <= k; n++ {
		if v := (Skyscraper{}).At(n); v == w {
			isElement = true
			break
		} else if v < w {
			prevElement = v
		}
	}
	if !isElement {
		t.Fatalf("W=%d is not a series element", w)
	}
	// Minimality among series elements: the previous element must miss.
	if prevElement > 0 {
		if prev := d / float64(Sum(Skyscraper{}, k, prevElement)); prev <= 0.3 {
			t.Errorf("W=%d is not minimal: element W=%d already achieves %v", w, prevElement, prev)
		}
	}
}

func TestWidthForLatencyInfeasible(t *testing.T) {
	// With K = 2 the uncapped sum is 3, so a target below D/3 is
	// unreachable.
	if w := WidthForLatency(Skyscraper{}, 2, 120, 1); w != 0 {
		t.Errorf("WidthForLatency(K=2, target=1) = %d, want 0 (infeasible)", w)
	}
}

func TestWidthForLatencyProperty(t *testing.T) {
	f := func(k uint8, targetTenths uint8) bool {
		kk := int(k%30) + 2
		target := (float64(targetTenths%80) + 1) / 10
		const d = 120.0
		w := WidthForLatency(Skyscraper{}, kk, d, target)
		if w == 0 {
			// Infeasible: the uncapped latency must indeed miss.
			return d/float64(Sum(Skyscraper{}, kk, 0)) > target
		}
		return d/float64(Sum(Skyscraper{}, kk, w)) <= target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
