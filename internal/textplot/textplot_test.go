package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	p := &Plot{
		Title:  "Figure X",
		XLabel: "B (Mb/s)",
		YLabel: "latency",
		Width:  40,
		Height: 10,
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 5, 10}},
			{Name: "down", X: []float64{0, 1, 2}, Y: []float64{10, 5, 0}},
		},
	}
	out := p.Render()
	for _, want := range []string{"Figure X", "* up", "o down", "B (Mb/s)", "latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("only %d lines", len(lines))
	}
}

func TestRenderLogY(t *testing.T) {
	p := &Plot{
		LogY:   true,
		Width:  30,
		Height: 8,
		Series: []Series{{Name: "exp", X: []float64{1, 2, 3}, Y: []float64{1, 100, 10000}}},
	}
	out := p.Render()
	if !strings.Contains(out, "log scale") && !strings.Contains(out, "exp") {
		t.Errorf("log plot output:\n%s", out)
	}
	// The midpoint must land midway on a log axis: row of the y=100
	// marker should be near the vertical middle.
	rows := strings.Split(out, "\n")
	var markRows []int
	for i, r := range rows {
		// Only plot-area rows (containing the axis bar); the legend
		// also prints the marker.
		if strings.Contains(r, "|") && strings.Contains(r, "*") {
			markRows = append(markRows, i)
		}
	}
	if len(markRows) != 3 {
		t.Fatalf("%d marker rows, want 3:\n%s", len(markRows), out)
	}
	mid := float64(markRows[0]+markRows[2]) / 2
	if math.Abs(float64(markRows[1])-mid) > 1 {
		t.Errorf("log middle marker at row %d, want about %v", markRows[1], mid)
	}
}

func TestRenderSkipsNaNAndNonPositiveLog(t *testing.T) {
	p := &Plot{
		LogY:   true,
		Series: []Series{{Name: "gappy", X: []float64{1, 2, 3}, Y: []float64{math.NaN(), -1, 10}}},
	}
	out := p.Render()
	points := 0
	for _, r := range strings.Split(out, "\n") {
		if strings.Contains(r, "|") {
			points += strings.Count(r, "*")
		}
	}
	if points != 1 {
		t.Errorf("want exactly one plotted point, got %d:\n%s", points, out)
	}
}

func TestRenderEmpty(t *testing.T) {
	p := &Plot{Title: "empty", Series: []Series{{Name: "none", X: []float64{1}, Y: []float64{math.NaN()}}}}
	if out := p.Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	p := &Plot{Series: []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}}}
	if out := p.Render(); !strings.Contains(out, "*") {
		t.Errorf("flat series not rendered:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"scheme", "K"}, [][]string{{"SB", "21"}, {"PB:a", "8"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "scheme") || !strings.Contains(lines[1], "---") {
		t.Errorf("header malformed:\n%s", out)
	}
	if !strings.Contains(lines[2], "SB") || !strings.Contains(lines[3], "PB:a") {
		t.Errorf("rows malformed:\n%s", out)
	}
}
