// Package textplot renders simple ASCII line charts and tables for the
// figure-regeneration CLI, so the paper's plots can be eyeballed in a
// terminal without any plotting dependency.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	// X and Y are the sample coordinates; NaN Y values mark gaps (e.g.
	// infeasible configurations).
	X, Y []float64
}

// Plot renders curves on a width x height character grid with simple axis
// annotations. Y may be log-scaled for the paper's latency/storage figures.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	LogY   bool
	Series []Series
}

// markers assigns one rune per curve, cycling if needed.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '=', '~'}

// Render draws the plot.
func (p *Plot) Render() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	yv := func(v float64) float64 {
		if p.LogY {
			return math.Log10(v)
		}
		return v
	}
	for _, s := range p.Series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || (p.LogY && s.Y[i] <= 0) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, yv(s.Y[i]))
			maxY = math.Max(maxY, yv(s.Y[i]))
		}
	}
	if minX > maxX { // no data at all
		return p.Title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range p.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || (p.LogY && s.Y[i] <= 0) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((yv(s.Y[i])-minY)/(maxY-minY)*float64(h-1))
			grid[row][col] = m
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	top, bottom := maxY, minY
	if p.LogY {
		top, bottom = math.Pow(10, maxY), math.Pow(10, minY)
	}
	fmt.Fprintf(&b, "%12.4g |%s\n", top, grid[0])
	for i := 1; i < h-1; i++ {
		fmt.Fprintf(&b, "%12s |%s\n", "", grid[i])
	}
	fmt.Fprintf(&b, "%12.4g |%s\n", bottom, grid[h-1])
	fmt.Fprintf(&b, "%12s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%12s  %-*g%*g\n", p.XLabel, w/2, minX, w-w/2, maxX)
	for si, s := range p.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	if p.YLabel != "" {
		scale := ""
		if p.LogY {
			scale = ", log scale"
		}
		fmt.Fprintf(&b, "  y: %s%s\n", p.YLabel, scale)
	}
	return b.String()
}

// Table renders rows with right-aligned columns under a header.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, hcell := range header {
		widths[i] = len(hcell)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
