package skyscraper_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"skyscraper"
)

// TestPublicAPIQuickstart exercises the README's quickstart path through
// the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := skyscraper.DefaultConfig(320)
	sb, err := skyscraper.New(cfg, 52)
	if err != nil {
		t.Fatal(err)
	}
	if sb.K() != 21 {
		t.Errorf("K = %d, want 21", sb.K())
	}
	if lat := sb.AccessLatencyMin(); lat <= 0 || lat > 0.2 {
		t.Errorf("latency = %v", lat)
	}
	plan, err := sb.PlanSchedule(7)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxConcurrentDownloads() > 2 {
		t.Error("more than two loaders needed")
	}
	prof, err := sb.Profile(plan)
	if err != nil {
		t.Fatal(err)
	}
	if prof.MaxMbit(cfg.RateMbps, sb.UnitMinutes()) > sb.BufferMbit() {
		t.Error("profile exceeds analytic bound")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	cfg := skyscraper.DefaultConfig(320)
	var perf []skyscraper.Performer
	pb, err := skyscraper.NewPyramid(cfg, skyscraper.PyramidB)
	if err != nil {
		t.Fatal(err)
	}
	perf = append(perf, pb)
	pp, err := skyscraper.NewPPB(cfg, skyscraper.PPBB)
	if err != nil {
		t.Fatal(err)
	}
	perf = append(perf, pp)
	st, err := skyscraper.NewStaggered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perf = append(perf, st)
	for _, p := range perf {
		if p.Name() == "" || p.AccessLatencyMin() < 0 || p.DiskBandwidthMbps() < cfg.RateMbps {
			t.Errorf("performer %q misbehaves", p.Name())
		}
	}
	if _, err := skyscraper.NewPyramid(skyscraper.DefaultConfig(40), skyscraper.PyramidB); !errors.Is(err, skyscraper.ErrInfeasible) {
		t.Errorf("infeasibility not surfaced: %v", err)
	}
}

func TestPublicAPISimulation(t *testing.T) {
	sb, err := skyscraper.New(skyscraper.DefaultConfig(150), 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := skyscraper.Sweep(skyscraper.SimulateSB(sb), 100, 300, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.WaitMin.Max() > sb.AccessLatencyMin()+1e-9 {
		t.Error("sweep exceeded latency bound")
	}
}

func TestPublicAPIWidthForLatency(t *testing.T) {
	w := skyscraper.WidthForLatency(21, 120, 0.2)
	if w == 0 {
		t.Fatal("0.2-minute target should be feasible at K=21")
	}
	sb, err := skyscraper.New(skyscraper.DefaultConfig(320), w)
	if err != nil {
		t.Fatal(err)
	}
	if got := sb.AccessLatencyMin(); got > 0.2 {
		t.Errorf("latency %v with computed width %d", got, w)
	}
}

func TestPublicAPIHybrid(t *testing.T) {
	cat, err := skyscraper.NewCatalog(40, skyscraper.ZipfSkew, 120, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := skyscraper.NewGenerator(skyscraper.WorkloadConfig{RatePerMin: 2, Seed: 3}, cat)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := skyscraper.RunBatch(skyscraper.BatchConfig{
		Channels: 6, Videos: 40, LengthMin: 120,
	}, skyscraper.MQL, gen.Take(200))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served != 200 {
		t.Errorf("served %d of 200", stats.Served)
	}
}

func TestPublicAPILive(t *testing.T) {
	if testing.Short() {
		t.Skip("live network test")
	}
	cfg := skyscraper.Config{ServerMbps: 1.5 * 4, Videos: 1, LengthMin: 120, RateMbps: 1.5}
	sb, err := skyscraper.New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := skyscraper.NewLiveServer(skyscraper.LiveServerConfig{
		Scheme: sb, Unit: 60 * time.Millisecond, BytesPerUnit: 4096, ChunkBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stats, err := skyscraper.WatchLive(skyscraper.LiveClientConfig{ServerAddr: srv.Addr(), Video: 0, JoinLeadFrac: 0.9, SlackFrac: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(sb.TotalUnits()) * 4096; stats.Bytes != want {
		t.Errorf("received %d, want %d", stats.Bytes, want)
	}
}

func TestPublicAPICustomSeries(t *testing.T) {
	// The paper's generalization: any alternating-parity series works.
	if math.Abs(float64(skyscraper.SkyscraperSeries.At(10))-52) > 0 {
		t.Error("series re-export broken")
	}
	if _, err := skyscraper.NewWithSeries(skyscraper.DefaultConfig(320), skyscraper.SkyscraperSeries, 12); err != nil {
		t.Errorf("custom-series constructor: %v", err)
	}
}

// TestPublicAPISimulatorWrappers exercises every Simulate* facade wrapper.
func TestPublicAPISimulatorWrappers(t *testing.T) {
	cfg := skyscraper.DefaultConfig(320)
	pb, err := skyscraper.NewPyramid(cfg, skyscraper.PyramidA)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := skyscraper.NewPPB(cfg, skyscraper.PPBA)
	if err != nil {
		t.Fatal(err)
	}
	st, err := skyscraper.NewStaggered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range []skyscraper.ClientSim{
		skyscraper.SimulatePyramid(pb),
		skyscraper.SimulatePPB(pp),
		skyscraper.SimulateStaggered(st),
	} {
		res, err := cs.Client(3.7, 1)
		if err != nil {
			t.Fatalf("%s: %v", cs.Name(), err)
		}
		if res.WaitMin < 0 || res.DownloadedMbit <= 0 {
			t.Errorf("%s: result %+v", cs.Name(), res)
		}
	}
}

// TestPublicAPIHybridOptimize drives the facade's optimizer end to end.
func TestPublicAPIHybridOptimize(t *testing.T) {
	cat, err := skyscraper.NewCatalog(16, skyscraper.ZipfSkew, 120, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := skyscraper.NewGenerator(skyscraper.WorkloadConfig{RatePerMin: 3, Seed: 4, MeanPatienceMin: 30}, cat)
	if err != nil {
		t.Fatal(err)
	}
	plan, rep, err := skyscraper.OptimizeHybrid(150, cat, gen.Take(300), []int64{2, 12})
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || rep == nil || rep.Served+rep.Reneged != 300 {
		t.Errorf("plan %v report %+v", plan, rep)
	}
}
