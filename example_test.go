package skyscraper_test

import (
	"fmt"

	"skyscraper"
)

// ExampleNew builds the paper's Section 5 workload at 320 Mbit/s and reads
// off the three Table 1 metrics.
func ExampleNew() {
	sb, err := skyscraper.New(skyscraper.DefaultConfig(320), 52)
	if err != nil {
		panic(err)
	}
	fmt.Printf("K = %d channels per video\n", sb.K())
	fmt.Printf("latency  %.4f min\n", sb.AccessLatencyMin())
	fmt.Printf("buffer   %.1f MByte\n", sb.BufferMbit()/8)
	fmt.Printf("disk bw  %.1f Mbit/s\n", sb.DiskBandwidthMbps())
	// Output:
	// K = 21 channels per video
	// latency  0.1683 min
	// buffer   96.6 MByte
	// disk bw  4.5 Mbit/s
}

// ExampleScheme_PlanSchedule shows a client's deterministic two-loader
// reception plan: each transmission group tuned at the latest broadcast
// meeting its deadline.
func ExampleScheme_PlanSchedule() {
	sb, err := skyscraper.New(skyscraper.DefaultConfig(150), 12) // K = 10
	if err != nil {
		panic(err)
	}
	plan, err := sb.PlanSchedule(4) // playback starts at unit 4
	if err != nil {
		panic(err)
	}
	for _, d := range plan.Downloads {
		fmt.Printf("group %d %-9v -> %-4v loader tunes at unit %d\n",
			d.Group.Index, d.Group, d.Loader, d.StartUnit)
	}
	// Output:
	// group 1 (1)       -> odd  loader tunes at unit 4
	// group 2 (2,2)     -> even loader tunes at unit 4
	// group 3 (5,5)     -> odd  loader tunes at unit 5
	// group 4 (12,12,12,12,12) -> even loader tunes at unit 12
}

// ExampleWidthForLatency inverts the access-latency formula: the smallest
// width meeting a half-minute target at K = 21.
func ExampleWidthForLatency() {
	w := skyscraper.WidthForLatency(21, 120, 0.5)
	sb, err := skyscraper.New(skyscraper.DefaultConfig(320), w)
	if err != nil {
		panic(err)
	}
	fmt.Printf("W = %d gives %.4f min at %.1f MByte\n", w, sb.AccessLatencyMin(), sb.BufferMbit()/8)
	// Output:
	// W = 25 gives 0.3085 min at 83.3 MByte
}

// ExampleNewPyramid contrasts the baselines at one operating point.
func ExampleNewPyramid() {
	cfg := skyscraper.DefaultConfig(320)
	pb, err := skyscraper.NewPyramid(cfg, skyscraper.PyramidB)
	if err != nil {
		panic(err)
	}
	pp, err := skyscraper.NewPPB(cfg, skyscraper.PPBB)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: K=%d alpha=%.4f buffer %.0f MByte\n", pb.Name(), pb.K(), pb.Alpha(), pb.BufferMbit()/8)
	fmt.Printf("%s: K=%d P=%d alpha=%.4f buffer %.0f MByte\n", pp.Name(), pp.K(), pp.P(), pp.Alpha(), pp.BufferMbit()/8)
	// Output:
	// PB:b: K=7 alpha=3.0476 buffer 1175 MByte
	// PPB:b: K=7 P=2 alpha=1.0476 buffer 142 MByte
}
